package sql

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cgp/internal/db/catalog"
	"cgp/internal/db/exec"
)

// joinAll builds the left-deep join tree over all FROM tables.
func (pl *planner) joinAll(locals, joins []Predicate) (exec.Iterator, error) {
	// Group local predicates per binding.
	localsFor := make(map[string][]Predicate)
	for _, p := range locals {
		b, err := pl.bindingOf(p.Left)
		if err != nil {
			return nil, err
		}
		localsFor[b.name] = append(localsFor[b.name], p)
	}

	joined := map[string]bool{}
	first := pl.bindings[0]
	plan, err := pl.baseAccess(first, localsFor[first.name])
	if err != nil {
		return nil, err
	}
	pl.bindIdentity(first)
	joined[first.name] = true

	// Pending join predicates; equality predicates drive the join
	// order, the rest become post-filters.
	pending := append([]Predicate(nil), joins...)
	joinLevel := 1

	for len(joined) < len(pl.bindings) {
		pi, inner, outerCol := pl.nextJoin(pending, joined)
		var innerB *binding
		var innerCol string
		if pi >= 0 {
			innerB = inner
			p := pending[pi]
			if p.Right == nil {
				return nil, fmt.Errorf("sql: internal: join predicate without right side")
			}
			// Figure out which side is the inner (unjoined) column.
			if b, _ := pl.bindingOf(p.Left); b != nil && b.name == innerB.name {
				innerCol = p.Left.Col
			} else {
				innerCol = p.Right.Col
			}
			pending = append(pending[:pi], pending[pi+1:]...)
		} else {
			// No connecting equality: cross join the next unjoined table.
			for i := range pl.bindings {
				if !joined[pl.bindings[i].name] {
					innerB = &pl.bindings[i]
					break
				}
			}
		}

		prefix := fmt.Sprintf("j%d_", joinLevel)
		joinLevel++
		leftSch := plan.Schema()
		innerLocals := localsFor[innerB.name]

		idxTree := innerB.tbl.Indexes[innerCol]
		if pi >= 0 && idxTree != nil {
			// Index nested-loops: the inner is the bare table through
			// its B+-tree; inner-local predicates become post-filters.
			plan = exec.NewIndexNLJoin(pl.ctx, plan, outerCol,
				idxTree, innerB.tbl.Heap, innerB.tbl.Schema, prefix)
			pl.bindJoined(*innerB, leftSch, prefix)
			for _, p := range innerLocals {
				name, err := pl.resolve(ColRef{Table: innerB.name, Col: p.Left.Col})
				if err != nil {
					return nil, err
				}
				pred, err := localPred(p, name, innerB.tbl.Schema, p.Left.Col)
				if err != nil {
					return nil, err
				}
				plan = exec.NewFilter(pl.ctx, plan, pred)
			}
		} else {
			innerPlan, err := pl.baseAccess(*innerB, innerLocals)
			if err != nil {
				return nil, err
			}
			if pi >= 0 {
				plan = exec.NewGraceHashJoin(pl.ctx, plan, innerPlan,
					outerCol, innerCol, 4, prefix)
			} else {
				plan = exec.NewNLJoin(pl.ctx, plan, innerPlan, exec.True{}, prefix)
			}
			pl.bindJoined(*innerB, leftSch, prefix)
		}
		joined[innerB.name] = true
	}

	// Remaining join predicates become filters over the joined schema.
	for _, p := range pending {
		l, err := pl.resolve(p.Left)
		if err != nil {
			return nil, err
		}
		r, err := pl.resolve(*p.Right)
		if err != nil {
			return nil, err
		}
		op, err := cmpOp(p.Op)
		if err != nil {
			return nil, err
		}
		plan = exec.NewFilter(pl.ctx, plan, exec.ColCmp{Left: l, Right: r, Op: op})
	}
	return plan, nil
}

// nextJoin finds a pending equality predicate connecting the joined set
// to one new table; it returns the predicate index, the new binding and
// the physical outer join column.
func (pl *planner) nextJoin(pending []Predicate, joined map[string]bool) (int, *binding, string) {
	for i, p := range pending {
		if p.Op != "=" || p.Right == nil {
			continue
		}
		lb, err1 := pl.bindingOf(p.Left)
		rb, err2 := pl.bindingOf(*p.Right)
		if err1 != nil || err2 != nil {
			continue
		}
		switch {
		case joined[lb.name] && !joined[rb.name]:
			if outer, err := pl.resolve(p.Left); err == nil {
				return i, rb, outer
			}
		case joined[rb.name] && !joined[lb.name]:
			if outer, err := pl.resolve(*p.Right); err == nil {
				return i, lb, outer
			}
		}
	}
	return -1, nil, ""
}

// bindIdentity maps a base table's columns to themselves.
func (pl *planner) bindIdentity(b binding) {
	m := make(map[string]string, b.tbl.Schema.NumCols())
	for i := 0; i < b.tbl.Schema.NumCols(); i++ {
		c := b.tbl.Schema.Col(i).Name
		m[c] = c
	}
	pl.phys[b.name] = m
}

// bindJoined maps a newly joined table's columns, applying the join's
// duplicate-renaming prefix.
func (pl *planner) bindJoined(b binding, leftSch *catalog.Schema, prefix string) {
	m := make(map[string]string, b.tbl.Schema.NumCols())
	for i := 0; i < b.tbl.Schema.NumCols(); i++ {
		c := b.tbl.Schema.Col(i).Name
		if leftSch.HasCol(c) {
			m[c] = prefix + c
		} else {
			m[c] = c
		}
	}
	pl.phys[b.name] = m
}

// baseAccess builds a table's access path: an index range scan when a
// local predicate covers an indexed integer column, else a sequential
// scan; predicates not absorbed by the range become filters.
func (pl *planner) baseAccess(b binding, locals []Predicate) (exec.Iterator, error) {
	var plan exec.Iterator
	used := make([]bool, len(locals))

	// Find an indexed column with a usable range. Candidates are
	// visited in a deterministic order (plans must be reproducible);
	// the clustered index is preferred.
	var candidates []string
	for col := range b.tbl.Indexes {
		candidates = append(candidates, col)
	}
	sort.Strings(candidates)
	if b.tbl.Clustered != "" {
		for i, c := range candidates {
			if c == b.tbl.Clustered {
				candidates[0], candidates[i] = candidates[i], candidates[0]
			}
		}
	}
	for _, col := range candidates {
		tree := b.tbl.Indexes[col]
		lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
		bounded := false
		for i, p := range locals {
			if p.Left.Col != col || p.Lit.IsStr {
				continue
			}
			switch p.Op {
			case "=":
				lo, hi = maxi(lo, p.Lit.Int), mini(hi, p.Lit.Int)
			case "BETWEEN":
				lo, hi = maxi(lo, p.Lit.Int), mini(hi, p.Hi.Int)
			case "<=":
				hi = mini(hi, p.Lit.Int)
			case "<":
				hi = mini(hi, p.Lit.Int-1)
			case ">=":
				lo = maxi(lo, p.Lit.Int)
			case ">":
				lo = maxi(lo, p.Lit.Int+1)
			default:
				continue
			}
			bounded = true
			used[i] = true
		}
		if bounded {
			plan = exec.NewIndexScan(pl.ctx, tree, b.tbl.Heap, b.tbl.Schema, lo, hi)
			break
		}
		// Reset for the next candidate column.
		for i := range used {
			used[i] = false
		}
	}
	if plan == nil {
		plan = exec.NewSeqScan(pl.ctx, b.tbl.Heap, b.tbl.Schema)
	}
	for i, p := range locals {
		if used[i] {
			continue
		}
		pred, err := localPred(p, p.Left.Col, b.tbl.Schema, p.Left.Col)
		if err != nil {
			return nil, err
		}
		plan = exec.NewFilter(pl.ctx, plan, pred)
	}
	return plan, nil
}

// localPred converts a column-literal predicate into an exec.Pred over
// the physical column name.
func localPred(p Predicate, physName string, tblSch *catalog.Schema, bareCol string) (exec.Pred, error) {
	isStr := tblSch.HasCol(bareCol) && tblSch.Col(tblSch.ColIndex(bareCol)).Type == catalog.String
	if p.Lit.IsStr != isStr {
		return nil, fmt.Errorf("sql: type mismatch on %s", p.Left)
	}
	if isStr {
		if p.Op != "=" {
			return nil, fmt.Errorf("sql: only = supported on string column %s", p.Left)
		}
		return exec.StrEq{Col: physName, Val: p.Lit.Str}, nil
	}
	if p.Op == "BETWEEN" {
		return exec.IntRange{Col: physName, Lo: p.Lit.Int, Hi: p.Hi.Int}, nil
	}
	op, err := cmpOp(p.Op)
	if err != nil {
		return nil, err
	}
	return exec.IntCmp{Col: physName, Op: op, Val: p.Lit.Int}, nil
}

func cmpOp(op string) (exec.CmpOp, error) {
	switch op {
	case "=":
		return exec.Eq, nil
	case "<>":
		return exec.Ne, nil
	case "<":
		return exec.Lt, nil
	case "<=":
		return exec.Le, nil
	case ">":
		return exec.Gt, nil
	case ">=":
		return exec.Ge, nil
	}
	return 0, fmt.Errorf("sql: unsupported operator %q", op)
}

// aggregate lowers GROUP BY + aggregate items.
func (pl *planner) aggregate(plan exec.Iterator) (exec.Iterator, error) {
	groupPhys := make([]string, len(pl.stmt.GroupBy))
	groupSet := map[string]bool{}
	for i, g := range pl.stmt.GroupBy {
		name, err := pl.resolve(g)
		if err != nil {
			return nil, err
		}
		groupPhys[i] = name
		groupSet[name] = true
	}
	var aggs []exec.Agg
	var outCols []string
	for _, it := range pl.stmt.Items {
		if it.Agg == "" {
			name, err := pl.resolve(it.Col)
			if err != nil {
				return nil, err
			}
			if !groupSet[name] {
				return nil, fmt.Errorf("sql: column %s is neither aggregated nor grouped", it.Col)
			}
			outCols = append(outCols, name)
			continue
		}
		as := it.As
		var op exec.AggOp
		switch it.Agg {
		case "COUNT":
			op = exec.Count
		case "SUM":
			op = exec.Sum
		case "MIN":
			op = exec.Min
		case "MAX":
			op = exec.Max
		case "AVG":
			op = exec.Avg
		}
		col := ""
		if !it.Star {
			name, err := pl.resolve(it.Col)
			if err != nil {
				return nil, err
			}
			col = name
		}
		if as == "" {
			if it.Star {
				as = "count"
			} else {
				as = strings.ToLower(it.Agg) + "_" + col
			}
		}
		aggs = append(aggs, exec.Agg{Op: op, Col: col, As: as})
		outCols = append(outCols, as)
	}
	out := exec.NewHashAggregate(pl.ctx, plan, groupPhys, aggs)
	pl.rebindToSchema(out.Schema())
	// Reorder/narrow the output to the user's item order.
	if len(outCols) > 0 && !sameOrder(out.Schema(), outCols) {
		return exec.NewProject(pl.ctx, out, outCols...), nil
	}
	return out, nil
}

func sameOrder(sch *catalog.Schema, cols []string) bool {
	if sch.NumCols() != len(cols) {
		return false
	}
	for i, c := range cols {
		if sch.Col(i).Name != c {
			return false
		}
	}
	return true
}

func mini(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
