package sql

import (
	"fmt"
	"strconv"
)

// Parse turns one SELECT statement into its AST.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input at %q", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: "+format, args...)
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectIdent() (string, error) {
	if t := p.peek(); t.kind == tokIdent {
		p.pos++
		return t.text, nil
	}
	return "", p.errf("expected identifier, got %q", p.peek().text)
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	if p.acceptSymbol("*") {
		stmt.Star = true
	} else {
		for {
			item, err := p.selectItem()
			if err != nil {
				return nil, err
			}
			stmt.Items = append(stmt.Items, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("INTO") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		stmt.Into = name
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		tr, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, tr)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		for {
			pred, err := p.predicate()
			if err != nil {
				return nil, err
			}
			stmt.Where = append(stmt.Where, pred)
			if !p.acceptKeyword("AND") {
				break
			}
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.colRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, c)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.colRef()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Col: c}
			if p.acceptKeyword("DESC") {
				key.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, key)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, p.errf("expected LIMIT count, got %q", t.text)
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

var aggKeywords = map[string]bool{"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true}

func (p *parser) selectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind == tokKeyword && aggKeywords[t.text] {
		p.pos++
		if !p.acceptSymbol("(") {
			return SelectItem{}, p.errf("expected ( after %s", t.text)
		}
		item := SelectItem{Agg: t.text}
		if p.acceptSymbol("*") {
			if t.text != "COUNT" {
				return SelectItem{}, p.errf("%s(*) is not valid", t.text)
			}
			item.Star = true
		} else {
			c, err := p.colRef()
			if err != nil {
				return SelectItem{}, err
			}
			item.Col = c
		}
		if !p.acceptSymbol(")") {
			return SelectItem{}, p.errf("expected ) in aggregate")
		}
		item.As = p.maybeAlias()
		return item, nil
	}
	c, err := p.colRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: c, As: p.maybeAlias()}, nil
}

func (p *parser) maybeAlias() string {
	if p.acceptKeyword("AS") {
		if t := p.peek(); t.kind == tokIdent {
			p.pos++
			return t.text
		}
	}
	return ""
}

func (p *parser) tableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Table: name}
	if t := p.peek(); t.kind == tokIdent {
		p.pos++
		tr.Alias = t.text
	}
	return tr, nil
}

func (p *parser) colRef() (ColRef, error) {
	first, err := p.expectIdent()
	if err != nil {
		return ColRef{}, err
	}
	if p.acceptSymbol(".") {
		col, err := p.expectIdent()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: first, Col: col}, nil
	}
	return ColRef{Col: first}, nil
}

func (p *parser) literal() (Value, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Value{}, p.errf("bad number %q", t.text)
		}
		return Value{Int: n}, nil
	case tokString:
		return Value{Str: t.text, IsStr: true}, nil
	}
	return Value{}, p.errf("expected literal, got %q", t.text)
}

func (p *parser) predicate() (Predicate, error) {
	left, err := p.colRef()
	if err != nil {
		return Predicate{}, err
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.literal()
		if err != nil {
			return Predicate{}, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return Predicate{}, err
		}
		hi, err := p.literal()
		if err != nil {
			return Predicate{}, err
		}
		if lo.IsStr || hi.IsStr {
			return Predicate{}, p.errf("BETWEEN requires integer bounds")
		}
		return Predicate{Left: left, Op: "BETWEEN", Lit: lo, Hi: hi}, nil
	}
	t := p.next()
	if t.kind != tokSymbol || !isCmp(t.text) {
		return Predicate{}, p.errf("expected comparison, got %q", t.text)
	}
	// Column or literal on the right?
	if r := p.peek(); r.kind == tokIdent {
		right, err := p.colRef()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Left: left, Op: t.text, Right: &right}, nil
	}
	lit, err := p.literal()
	if err != nil {
		return Predicate{}, err
	}
	return Predicate{Left: left, Op: t.text, Lit: lit}, nil
}

func isCmp(s string) bool {
	switch s {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}
