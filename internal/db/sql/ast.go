package sql

import "fmt"

// SelectStmt is the AST of one statement:
//
//	SELECT <items> [INTO tmp] FROM t1 [, t2 ...] [WHERE pred [AND ...]]
//	[GROUP BY cols] [ORDER BY col [DESC], ...] [LIMIT n]
type SelectStmt struct {
	Items   []SelectItem
	Star    bool
	Into    string
	From    []TableRef
	Where   []Predicate // implicit conjunction
	GroupBy []ColRef
	OrderBy []OrderKey
	Limit   int64 // -1 = none
}

// SelectItem is one output column: a plain column or an aggregate.
type SelectItem struct {
	Col ColRef
	// Agg is "" for plain columns, else COUNT/SUM/MIN/MAX/AVG.
	Agg string
	// Star marks COUNT(*).
	Star bool
	As   string
}

// TableRef names a FROM table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the binding name (alias if present).
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// ColRef is a possibly-qualified column reference.
type ColRef struct {
	Table string // "" = unqualified
	Col   string
}

// String renders t.c or c.
func (c ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Col
	}
	return c.Col
}

// Value is a literal operand.
type Value struct {
	Int   int64
	Str   string
	IsStr bool
}

// Predicate is one WHERE conjunct: either column-op-literal,
// column-op-column (join), or column BETWEEN lo AND hi.
type Predicate struct {
	Left ColRef
	// Op is one of = <> < <= > >= BETWEEN.
	Op string
	// Right is set for column-column predicates.
	Right *ColRef
	// Lit is set for column-literal predicates (and BETWEEN's low
	// bound).
	Lit Value
	// Hi is BETWEEN's high bound.
	Hi Value
}

// IsJoin reports whether the predicate links two columns.
func (p Predicate) IsJoin() bool { return p.Right != nil }

// OrderKey is one ORDER BY entry.
type OrderKey struct {
	Col  ColRef
	Desc bool
}

// String renders the statement (for error messages and tests).
func (s *SelectStmt) String() string {
	out := "SELECT "
	if s.Star {
		out += "*"
	} else {
		for i, it := range s.Items {
			if i > 0 {
				out += ", "
			}
			if it.Agg != "" {
				if it.Star {
					out += it.Agg + "(*)"
				} else {
					out += fmt.Sprintf("%s(%s)", it.Agg, it.Col)
				}
			} else {
				out += it.Col.String()
			}
		}
	}
	out += " FROM"
	for i, t := range s.From {
		if i > 0 {
			out += ","
		}
		out += " " + t.Table
		if t.Alias != "" {
			out += " " + t.Alias
		}
	}
	return out
}
