// Package sql implements the top layers of Figure 1: a small SQL
// dialect (SELECT with joins, WHERE, GROUP BY, ORDER BY, LIMIT and
// SELECT INTO), a parser, and a rule-based planner that lowers
// statements onto the relational operator layer — choosing index scans
// over sequential scans, and index nested-loops over Grace hash joins,
// from the catalog's indexes.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , * = <> < <= > >= .
	tokKeyword
)

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"GROUP": true, "BY": true, "ORDER": true, "LIMIT": true,
	"INTO": true, "AS": true, "DESC": true, "ASC": true,
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
	"BETWEEN": true, "JOIN": true, "ON": true, "INNER": true,
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src. Keywords are case-insensitive and normalized to
// upper case; identifiers keep their case.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			word := l.src[start:l.pos]
			if keywords[strings.ToUpper(word)] {
				l.emit(tokKeyword, strings.ToUpper(word))
			} else {
				l.emit(tokIdent, word)
			}
		case c >= '0' && c <= '9' || c == '-' && l.peekDigit():
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			l.emit(tokNumber, l.src[start:l.pos])
		case c == '\'':
			l.pos++
			start := l.pos
			for l.pos < len(l.src) && l.src[l.pos] != '\'' {
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("sql: unterminated string at %d", start)
			}
			l.emit(tokString, l.src[start:l.pos])
			l.pos++
		case strings.ContainsRune("(),*.", rune(c)):
			l.emit(tokSymbol, string(c))
			l.pos++
		case c == '=':
			l.emit(tokSymbol, "=")
			l.pos++
		case c == '<':
			if l.pos+1 < len(l.src) && (l.src[l.pos+1] == '=' || l.src[l.pos+1] == '>') {
				l.emit(tokSymbol, l.src[l.pos:l.pos+2])
				l.pos += 2
			} else {
				l.emit(tokSymbol, "<")
				l.pos++
			}
		case c == '>':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.emit(tokSymbol, ">=")
				l.pos += 2
			} else {
				l.emit(tokSymbol, ">")
				l.pos++
			}
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
		}
	}
}

func (l *lexer) emit(k tokenKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *lexer) peekDigit() bool {
	return l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
