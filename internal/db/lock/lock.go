// Package lock is the concurrency-control substrate: a table of shared/
// exclusive locks keyed by abstract resource IDs (pages, records), with
// per-owner bookkeeping for two-phase release. Queries in the simulated
// workloads run cooperatively, so a conflict is an error rather than a
// wait — the instrumented code path (the paper's Lock_page/Unlock_page,
// lock_record) is what matters for the I-cache study.
package lock

import (
	"fmt"

	"cgp/internal/db/probe"
	"cgp/internal/program"
)

// Mode is a lock mode.
type Mode uint8

const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits one writer.
	Exclusive
)

// String returns "S" or "X".
func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// Resource identifies a lockable object.
type Resource uint64

// PageResource builds a resource ID for a page.
func PageResource(pageID uint32) Resource {
	return Resource(uint64(pageID) | 1<<40)
}

// RecordResource builds a resource ID for a record.
func RecordResource(pageID uint32, slot uint16) Resource {
	return Resource(uint64(pageID)<<16 | uint64(slot) | 1<<41)
}

// Owner identifies a lock holder (a transaction).
type Owner uint64

// Funcs holds the instrumented-function IDs of the lock manager.
type Funcs struct {
	LockPage     program.FuncID
	UnlockPage   program.FuncID
	LockRecord   program.FuncID
	UnlockRecord program.FuncID
	LockAcquire  program.FuncID
	LockRelease  program.FuncID
}

// RegisterFuncs registers the lock-manager functions.
func RegisterFuncs(reg *program.Registry) Funcs {
	return Funcs{
		LockPage:     reg.Register("Lock_page", 150),
		UnlockPage:   reg.Register("Unlock_page", 120),
		LockRecord:   reg.Register("Lock_record", 170),
		UnlockRecord: reg.Register("Unlock_record", 130),
		LockAcquire:  reg.Register("Lock_acquire", 260),
		LockRelease:  reg.Register("Lock_release", 200),
	}
}

type lockState struct {
	mode    Mode
	holders map[Owner]int // owner -> acquisition count (reentrant)
}

// Stats counts lock-manager activity.
type Stats struct {
	Acquires  int64
	Releases  int64
	Upgrades  int64
	Conflicts int64
}

// Manager is the lock table.
type Manager struct {
	table map[Resource]*lockState
	held  map[Owner]map[Resource]struct{}
	pr    *probe.Probe
	fns   Funcs
	stats Stats
}

// NewManager builds an empty lock table.
func NewManager(pr *probe.Probe, fns Funcs) *Manager {
	return &Manager{
		table: make(map[Resource]*lockState),
		held:  make(map[Owner]map[Resource]struct{}),
		pr:    pr,
		fns:   fns,
	}
}

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats { return m.stats }

// LockPage acquires a page lock (the paper's Lock_page).
func (m *Manager) LockPage(o Owner, pageID uint32, mode Mode) error {
	m.pr.Enter(m.fns.LockPage)
	defer m.pr.Exit()
	m.pr.Work(10)
	return m.acquire(o, PageResource(pageID), mode)
}

// UnlockPage releases a page lock (the paper's Unlock_page).
func (m *Manager) UnlockPage(o Owner, pageID uint32) {
	m.pr.Enter(m.fns.UnlockPage)
	defer m.pr.Exit()
	m.pr.Work(8)
	m.release(o, PageResource(pageID))
}

// LockRecord acquires a record lock (the paper's lock_record example of
// a function called from many places, §5.2).
func (m *Manager) LockRecord(o Owner, pageID uint32, slot uint16, mode Mode) error {
	m.pr.Enter(m.fns.LockRecord)
	defer m.pr.Exit()
	m.pr.Work(12)
	return m.acquire(o, RecordResource(pageID, slot), mode)
}

// UnlockRecord releases a record lock.
func (m *Manager) UnlockRecord(o Owner, pageID uint32, slot uint16) {
	m.pr.Enter(m.fns.UnlockRecord)
	defer m.pr.Exit()
	m.pr.Work(8)
	m.release(o, RecordResource(pageID, slot))
}

// acquire takes r in the given mode for o, upgrading S->X when o is the
// sole holder.
func (m *Manager) acquire(o Owner, r Resource, mode Mode) error {
	m.pr.Enter(m.fns.LockAcquire)
	defer m.pr.Exit()
	m.pr.Work(24)
	st := m.table[r]
	if st == nil {
		st = &lockState{mode: mode, holders: map[Owner]int{o: 1}}
		m.table[r] = st
		m.record(o, r)
		m.stats.Acquires++
		return nil
	}
	if n := st.holders[o]; n > 0 {
		// Reentrant; upgrade if needed and possible.
		if mode == Exclusive && st.mode == Shared {
			if len(st.holders) > 1 {
				m.stats.Conflicts++
				return fmt.Errorf("lock: upgrade conflict on %#x", uint64(r))
			}
			st.mode = Exclusive
			m.stats.Upgrades++
		}
		st.holders[o] = n + 1
		m.stats.Acquires++
		return nil
	}
	if st.mode == Exclusive || mode == Exclusive {
		m.stats.Conflicts++
		return fmt.Errorf("lock: %s conflict on %#x", mode, uint64(r))
	}
	st.holders[o] = 1
	m.record(o, r)
	m.stats.Acquires++
	return nil
}

// release drops one acquisition of r by o.
func (m *Manager) release(o Owner, r Resource) {
	m.pr.Enter(m.fns.LockRelease)
	defer m.pr.Exit()
	m.pr.Work(18)
	st := m.table[r]
	if st == nil || st.holders[o] == 0 {
		return // releasing an unheld lock is a no-op, as in SHORE
	}
	m.stats.Releases++
	st.holders[o]--
	if st.holders[o] > 0 {
		return
	}
	delete(st.holders, o)
	if set := m.held[o]; set != nil {
		delete(set, r)
	}
	if len(st.holders) == 0 {
		delete(m.table, r)
	}
}

// ReleaseAll drops every lock held by o (end of transaction: the release
// phase of two-phase locking).
func (m *Manager) ReleaseAll(o Owner) {
	set := m.held[o]
	for r := range set {
		st := m.table[r]
		if st == nil {
			continue
		}
		if st.holders[o] > 0 {
			m.stats.Releases++
		}
		delete(st.holders, o)
		if len(st.holders) == 0 {
			delete(m.table, r)
		}
	}
	delete(m.held, o)
}

// HeldBy returns how many resources o currently holds.
func (m *Manager) HeldBy(o Owner) int { return len(m.held[o]) }

// Outstanding returns the number of locked resources.
func (m *Manager) Outstanding() int { return len(m.table) }

func (m *Manager) record(o Owner, r Resource) {
	set := m.held[o]
	if set == nil {
		set = make(map[Resource]struct{})
		m.held[o] = set
	}
	set[r] = struct{}{}
}
