package lock

import "testing"

func newMgr() *Manager { return NewManager(nil, Funcs{}) }

func TestSharedCompatible(t *testing.T) {
	m := newMgr()
	if err := m.LockPage(1, 10, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.LockPage(2, 10, Shared); err != nil {
		t.Fatalf("second shared lock: %v", err)
	}
}

func TestExclusiveConflicts(t *testing.T) {
	m := newMgr()
	if err := m.LockPage(1, 10, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.LockPage(2, 10, Shared); err == nil {
		t.Error("S granted over X")
	}
	if err := m.LockPage(2, 10, Exclusive); err == nil {
		t.Error("X granted over X")
	}
	if m.Stats().Conflicts != 2 {
		t.Errorf("conflicts = %d", m.Stats().Conflicts)
	}
}

func TestSharedBlocksExclusive(t *testing.T) {
	m := newMgr()
	m.LockPage(1, 10, Shared)
	m.LockPage(2, 10, Shared)
	if err := m.LockPage(3, 10, Exclusive); err == nil {
		t.Error("X granted over two S holders")
	}
}

func TestReentrant(t *testing.T) {
	m := newMgr()
	for i := 0; i < 3; i++ {
		if err := m.LockPage(1, 10, Shared); err != nil {
			t.Fatal(err)
		}
	}
	m.UnlockPage(1, 10)
	m.UnlockPage(1, 10)
	// Still held once.
	if err := m.LockPage(2, 10, Exclusive); err == nil {
		t.Error("X granted while S still held")
	}
	m.UnlockPage(1, 10)
	if err := m.LockPage(2, 10, Exclusive); err != nil {
		t.Errorf("X after full release: %v", err)
	}
}

func TestUpgrade(t *testing.T) {
	m := newMgr()
	m.LockPage(1, 10, Shared)
	if err := m.LockPage(1, 10, Exclusive); err != nil {
		t.Fatalf("sole-holder upgrade failed: %v", err)
	}
	if err := m.LockPage(2, 10, Shared); err == nil {
		t.Error("S granted after upgrade to X")
	}
	if m.Stats().Upgrades != 1 {
		t.Errorf("upgrades = %d", m.Stats().Upgrades)
	}
}

func TestUpgradeConflict(t *testing.T) {
	m := newMgr()
	m.LockPage(1, 10, Shared)
	m.LockPage(2, 10, Shared)
	if err := m.LockPage(1, 10, Exclusive); err == nil {
		t.Error("upgrade granted with other holders")
	}
}

func TestRecordAndPageDistinct(t *testing.T) {
	m := newMgr()
	if err := m.LockPage(1, 10, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.LockRecord(2, 10, 0, Exclusive); err != nil {
		t.Errorf("record lock conflated with page lock: %v", err)
	}
}

func TestReleaseAll(t *testing.T) {
	m := newMgr()
	m.LockPage(1, 10, Exclusive)
	m.LockPage(1, 11, Shared)
	m.LockRecord(1, 10, 3, Exclusive)
	if m.HeldBy(1) != 3 {
		t.Fatalf("held = %d", m.HeldBy(1))
	}
	m.ReleaseAll(1)
	if m.HeldBy(1) != 0 || m.Outstanding() != 0 {
		t.Errorf("held=%d outstanding=%d after ReleaseAll", m.HeldBy(1), m.Outstanding())
	}
	if err := m.LockPage(2, 10, Exclusive); err != nil {
		t.Errorf("lock after ReleaseAll: %v", err)
	}
}

func TestReleaseUnheldIsNoop(t *testing.T) {
	m := newMgr()
	m.UnlockPage(1, 99) // must not panic
	if m.Stats().Releases != 0 {
		t.Errorf("releases = %d", m.Stats().Releases)
	}
}

func TestModeString(t *testing.T) {
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Error("mode strings wrong")
	}
}

func TestResourceEncodings(t *testing.T) {
	if PageResource(10) == RecordResource(10, 0) {
		t.Error("page and record resources collide")
	}
	if RecordResource(10, 1) == RecordResource(10, 2) {
		t.Error("record resources collide across slots")
	}
	if PageResource(1) == PageResource(2) {
		t.Error("page resources collide")
	}
}
