// Package index implements a page-based B+-tree over the buffer pool:
// int64 keys mapping to record IDs, with leaf-chained range scans,
// recursive node splits, and lazy deletion. It is the "B+ trees" piece
// of the SHORE storage-manager feature set (§4.1) and the substrate for
// the Wisconsin indexed-selection queries.
package index

import (
	"encoding/binary"
	"errors"
	"fmt"

	"cgp/internal/db/probe"
	"cgp/internal/db/storage"
	"cgp/internal/isa"
	"cgp/internal/program"
)

// Funcs holds the instrumented-function IDs of the index layer.
type Funcs struct {
	Search    program.FuncID
	Insert    program.FuncID
	Split     program.FuncID
	BinSearch program.FuncID
	OpenScan  program.FuncID
	LeafNext  program.FuncID
	Delete    program.FuncID
}

// RegisterFuncs registers the index-layer functions.
func RegisterFuncs(reg *program.Registry) Funcs {
	return Funcs{
		Search:    reg.Register("Btree_search", 340),
		Insert:    reg.Register("Btree_insert", 420),
		Split:     reg.Register("Btree_split", 520),
		BinSearch: reg.Register("Btree_binsearch", 140),
		OpenScan:  reg.Register("Btree_open_scan", 170),
		LeafNext:  reg.Register("Btree_leaf_next", 210),
		Delete:    reg.Register("Btree_delete", 380),
	}
}

// Node layout, after the 20-byte storage page header:
//
//	20    isLeaf (1 byte), 21 pad, 22:24 nkeys
//	leaf:  entries at 24: key int64, page uint32, slot uint16, pad 2  (16 B)
//	inner: child0 uint32 at 24; entries at 28: key int64, child uint32 (12 B)
//
// Leaves use the page header's Next field as the right-sibling pointer.
const (
	nodeMetaOff  = 20
	offIsLeaf    = nodeMetaOff
	offNKeys     = nodeMetaOff + 2
	leafEntryOff = nodeMetaOff + 4
	leafEntrySz  = 16
	innerChild0  = nodeMetaOff + 4
	innerEntries = innerChild0 + 4
	innerEntrySz = 12
)

// LeafCapacity is the max entries per leaf node.
const LeafCapacity = (storage.PageSize - leafEntryOff) / leafEntrySz

// InnerCapacity is the max keys per inner node.
const InnerCapacity = (storage.PageSize - innerEntries) / innerEntrySz

// ErrNotFound is returned by Search when the key is absent.
var ErrNotFound = errors.New("index: key not found")

// Tree is one B+-tree.
type Tree struct {
	name string
	pool *storage.BufferPool
	pr   *probe.Probe
	fns  Funcs

	root   storage.PageID
	height int
	nKeys  int64
}

// Create builds an empty tree (a single empty leaf as root).
func Create(name string, pool *storage.BufferPool, pr *probe.Probe, fns Funcs) (*Tree, error) {
	frame, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	initLeaf(frame.Page())
	root := frame.Page().ID()
	pool.Unpin(frame, true)
	return &Tree{name: name, pool: pool, pr: pr, fns: fns, root: root, height: 1}, nil
}

// Name returns the index name.
func (t *Tree) Name() string { return t.name }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// Len returns the number of keys.
func (t *Tree) Len() int64 { return t.nKeys }

func initLeaf(p storage.Page) {
	buf := pageBuf(p)
	buf[offIsLeaf] = 1
	binary.LittleEndian.PutUint16(buf[offNKeys:], 0)
	p.SetNext(storage.InvalidPageID)
}

func initInner(p storage.Page) {
	buf := pageBuf(p)
	buf[offIsLeaf] = 0
	binary.LittleEndian.PutUint16(buf[offNKeys:], 0)
}

// pageBuf exposes the raw page bytes; the B+-tree manages its own layout
// inside the record area.
func pageBuf(p storage.Page) []byte { return p.Raw() }

type node struct {
	page storage.Page
	buf  []byte
}

func asNode(p storage.Page) node { return node{page: p, buf: pageBuf(p)} }

func (n node) isLeaf() bool { return n.buf[offIsLeaf] == 1 }
func (n node) nKeys() int   { return int(binary.LittleEndian.Uint16(n.buf[offNKeys:])) }
func (n node) setNKeys(k int) {
	binary.LittleEndian.PutUint16(n.buf[offNKeys:], uint16(k))
}

func (n node) leafKey(i int) int64 {
	return int64(binary.LittleEndian.Uint64(n.buf[leafEntryOff+i*leafEntrySz:]))
}

func (n node) leafRID(i int) storage.RID {
	base := leafEntryOff + i*leafEntrySz + 8
	return storage.RID{
		Page: storage.PageID(binary.LittleEndian.Uint32(n.buf[base:])),
		Slot: binary.LittleEndian.Uint16(n.buf[base+4:]),
	}
}

func (n node) setLeafEntry(i int, key int64, rid storage.RID) {
	base := leafEntryOff + i*leafEntrySz
	binary.LittleEndian.PutUint64(n.buf[base:], uint64(key))
	binary.LittleEndian.PutUint32(n.buf[base+8:], uint32(rid.Page))
	binary.LittleEndian.PutUint16(n.buf[base+12:], rid.Slot)
}

func (n node) copyLeafEntry(dst int, src node, srcIdx int) {
	d := leafEntryOff + dst*leafEntrySz
	s := leafEntryOff + srcIdx*leafEntrySz
	copy(n.buf[d:d+leafEntrySz], src.buf[s:s+leafEntrySz])
}

func (n node) innerKey(i int) int64 {
	return int64(binary.LittleEndian.Uint64(n.buf[innerEntries+i*innerEntrySz:]))
}

func (n node) child(i int) storage.PageID {
	if i == 0 {
		return storage.PageID(binary.LittleEndian.Uint32(n.buf[innerChild0:]))
	}
	base := innerEntries + (i-1)*innerEntrySz + 8
	return storage.PageID(binary.LittleEndian.Uint32(n.buf[base:]))
}

func (n node) setChild0(c storage.PageID) {
	binary.LittleEndian.PutUint32(n.buf[innerChild0:], uint32(c))
}

func (n node) setInnerEntry(i int, key int64, child storage.PageID) {
	base := innerEntries + i*innerEntrySz
	binary.LittleEndian.PutUint64(n.buf[base:], uint64(key))
	binary.LittleEndian.PutUint32(n.buf[base+8:], uint32(child))
}

func (n node) copyInnerEntry(dst int, src node, srcIdx int) {
	d := innerEntries + dst*innerEntrySz
	s := innerEntries + srcIdx*innerEntrySz
	copy(n.buf[d:d+innerEntrySz], src.buf[s:s+innerEntrySz])
}

// binSearchLeaf returns the first index with key >= k.
func (t *Tree) binSearchLeaf(n node, k int64) int {
	t.pr.Enter(t.fns.BinSearch)
	defer t.pr.Exit()
	t.pr.Work(8 + 3*bitsLen(n.nKeys()))
	lo, hi := 0, n.nKeys()
	for lo < hi {
		mid := (lo + hi) / 2
		if n.leafKey(mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns which child to descend into for key k.
func (t *Tree) childIndex(n node, k int64) int {
	t.pr.Enter(t.fns.BinSearch)
	defer t.pr.Exit()
	t.pr.Work(8 + 3*bitsLen(n.nKeys()))
	lo, hi := 0, n.nKeys()
	for lo < hi {
		mid := (lo + hi) / 2
		if n.innerKey(mid) <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func bitsLen(n int) int {
	b := 1
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// touch records the data traffic of inspecting a node.
func (t *Tree) touch(p storage.Page) {
	t.pr.Data(storage.PageAddr(p.ID())+nodeMetaOff, 96, false)
}

// descendToLeaf walks from the root to the leaf that should hold k,
// returning the pinned leaf frame and the path of pinned ancestors when
// withPath is set (for splits). Callers must unpin everything returned.
func (t *Tree) descendToLeaf(k int64, withPath bool) (*storage.Frame, []*storage.Frame, error) {
	var path []*storage.Frame
	frame, err := t.pool.GetPage(t.root)
	if err != nil {
		return nil, nil, err
	}
	for {
		n := asNode(frame.Page())
		t.touch(frame.Page())
		if n.isLeaf() {
			return frame, path, nil
		}
		idx := t.childIndex(n, k)
		child := n.child(idx)
		next, err := t.pool.GetPage(child)
		if err != nil {
			t.pool.Unpin(frame, false)
			for _, f := range path {
				t.pool.Unpin(f, false)
			}
			return nil, nil, err
		}
		if withPath {
			path = append(path, frame)
		} else {
			t.pool.Unpin(frame, false)
		}
		frame = next
	}
}

// Search returns the RID of the first entry with the given key.
func (t *Tree) Search(k int64) (storage.RID, error) {
	t.pr.Enter(t.fns.Search)
	defer t.pr.Exit()
	t.pr.Work(18)
	leaf, _, err := t.descendToLeaf(k, false)
	if err != nil {
		return storage.InvalidRID, err
	}
	defer t.pool.Unpin(leaf, false)
	n := asNode(leaf.Page())
	i := t.binSearchLeaf(n, k)
	if i < n.nKeys() && n.leafKey(i) == k {
		return n.leafRID(i), nil
	}
	return storage.InvalidRID, fmt.Errorf("index %s: key %d: %w", t.name, k, ErrNotFound)
}

// Insert adds (k, rid). Duplicate keys are allowed and kept adjacent.
func (t *Tree) Insert(k int64, rid storage.RID) error {
	t.pr.Enter(t.fns.Insert)
	defer t.pr.Exit()
	t.pr.Work(22)
	leaf, path, err := t.descendToLeaf(k, true)
	if err != nil {
		return err
	}
	err = t.insertIntoLeaf(leaf, path, k, rid)
	if err == nil {
		t.nKeys++
	}
	return err
}

func (t *Tree) insertIntoLeaf(leaf *storage.Frame, path []*storage.Frame, k int64, rid storage.RID) error {
	defer func() {
		for _, f := range path {
			t.pool.Unpin(f, false)
		}
	}()
	n := asNode(leaf.Page())
	if n.nKeys() < LeafCapacity {
		t.leafInsertAt(n, t.binSearchLeaf(n, k), k, rid)
		t.pool.Unpin(leaf, true)
		return nil
	}
	// Split the leaf, then push the separator up the path.
	sepKey, rightID, err := t.splitLeaf(leaf, k, rid)
	if err != nil {
		t.pool.Unpin(leaf, true)
		return err
	}
	t.pool.Unpin(leaf, true)
	return t.insertIntoParents(path, sepKey, rightID)
}

// leafInsertAt shifts entries right and writes (k, rid) at position i.
func (t *Tree) leafInsertAt(n node, i int, k int64, rid storage.RID) {
	nk := n.nKeys()
	base := leafEntryOff
	copy(n.buf[base+(i+1)*leafEntrySz:base+(nk+1)*leafEntrySz],
		n.buf[base+i*leafEntrySz:base+nk*leafEntrySz])
	n.setLeafEntry(i, k, rid)
	n.setNKeys(nk + 1)
	t.pr.Data(storage.PageAddr(n.page.ID())+isa.Addr(base+i*leafEntrySz), leafEntrySz, true)
}

// splitLeaf splits a full leaf around its midpoint, inserting (k, rid)
// into the proper half, and returns the separator key and new right
// sibling.
func (t *Tree) splitLeaf(leaf *storage.Frame, k int64, rid storage.RID) (int64, storage.PageID, error) {
	t.pr.Enter(t.fns.Split)
	defer t.pr.Exit()
	t.pr.Work(90)
	rightFrame, err := t.pool.NewPage()
	if err != nil {
		return 0, 0, err
	}
	initLeaf(rightFrame.Page())
	left := asNode(leaf.Page())
	right := asNode(rightFrame.Page())

	mid := left.nKeys() / 2
	moved := left.nKeys() - mid
	for i := 0; i < moved; i++ {
		right.copyLeafEntry(i, left, mid+i)
	}
	right.setNKeys(moved)
	left.setNKeys(mid)
	right.page.SetNext(left.page.Next())
	left.page.SetNext(right.page.ID())

	sep := right.leafKey(0)
	if k < sep {
		t.leafInsertAt(left, t.binSearchLeaf(left, k), k, rid)
	} else {
		t.leafInsertAt(right, t.binSearchLeaf(right, k), k, rid)
	}
	t.pr.Data(storage.PageAddr(right.page.ID()), 256, true)
	rightID := right.page.ID()
	t.pool.Unpin(rightFrame, true)
	return sep, rightID, nil
}

// insertIntoParents pushes a separator up the pinned path, splitting
// inner nodes as needed and growing a new root when the path empties.
func (t *Tree) insertIntoParents(path []*storage.Frame, sepKey int64, rightID storage.PageID) error {
	for level := len(path) - 1; level >= 0; level-- {
		parent := path[level]
		n := asNode(parent.Page())
		if n.nKeys() < InnerCapacity {
			t.innerInsert(n, sepKey, rightID)
			// Mark dirty via a pin-neutral unpin/pin pair is overkill;
			// the frame is unpinned dirty by the deferred cleanup in
			// insertIntoLeaf, so flag it here.
			t.pool.MarkDirty(parent)
			return nil
		}
		var err error
		sepKey, rightID, err = t.splitInner(parent, sepKey, rightID)
		if err != nil {
			return err
		}
		t.pool.MarkDirty(parent)
	}
	// The root itself split: grow the tree.
	newRootFrame, err := t.pool.NewPage()
	if err != nil {
		return err
	}
	nr := asNode(newRootFrame.Page())
	initInner(newRootFrame.Page())
	nr.setChild0(t.root)
	nr.setInnerEntry(0, sepKey, rightID)
	nr.setNKeys(1)
	t.root = newRootFrame.Page().ID()
	t.height++
	t.pool.Unpin(newRootFrame, true)
	return nil
}

// innerInsert adds (sepKey, child) into an inner node with room.
func (t *Tree) innerInsert(n node, sepKey int64, child storage.PageID) {
	i := t.childIndex(n, sepKey)
	nk := n.nKeys()
	base := innerEntries
	copy(n.buf[base+(i+1)*innerEntrySz:base+(nk+1)*innerEntrySz],
		n.buf[base+i*innerEntrySz:base+nk*innerEntrySz])
	n.setInnerEntry(i, sepKey, child)
	n.setNKeys(nk + 1)
	t.pr.Data(storage.PageAddr(n.page.ID())+isa.Addr(base+i*innerEntrySz), innerEntrySz, true)
}

// splitInner splits a full inner node, returning the promoted key and
// the new right node.
func (t *Tree) splitInner(frame *storage.Frame, sepKey int64, child storage.PageID) (int64, storage.PageID, error) {
	t.pr.Enter(t.fns.Split)
	defer t.pr.Exit()
	t.pr.Work(110)
	rightFrame, err := t.pool.NewPage()
	if err != nil {
		return 0, 0, err
	}
	initInner(rightFrame.Page())
	left := asNode(frame.Page())
	right := asNode(rightFrame.Page())

	nk := left.nKeys()
	mid := nk / 2
	promoted := left.innerKey(mid)
	// Entries after mid move right; child(mid+1) becomes right's child0.
	right.setChild0(left.child(mid + 1))
	moved := 0
	for i := mid + 1; i < nk; i++ {
		right.copyInnerEntry(moved, left, i)
		moved++
	}
	right.setNKeys(moved)
	left.setNKeys(mid)

	if sepKey < promoted {
		t.innerInsert(left, sepKey, child)
	} else {
		t.innerInsert(right, sepKey, child)
	}
	t.pr.Data(storage.PageAddr(right.page.ID()), 256, true)
	rightID := right.page.ID()
	t.pool.Unpin(rightFrame, true)
	return promoted, rightID, nil
}

// Delete removes the first entry with key k (lazy: leaves may underflow
// but are never merged, as in many production trees).
func (t *Tree) Delete(k int64) error {
	t.pr.Enter(t.fns.Delete)
	defer t.pr.Exit()
	t.pr.Work(24)
	leaf, _, err := t.descendToLeaf(k, false)
	if err != nil {
		return err
	}
	n := asNode(leaf.Page())
	i := t.binSearchLeaf(n, k)
	if i >= n.nKeys() || n.leafKey(i) != k {
		t.pool.Unpin(leaf, false)
		return fmt.Errorf("index %s: delete key %d: %w", t.name, k, ErrNotFound)
	}
	nk := n.nKeys()
	base := leafEntryOff
	copy(n.buf[base+i*leafEntrySz:base+(nk-1)*leafEntrySz],
		n.buf[base+(i+1)*leafEntrySz:base+nk*leafEntrySz])
	n.setNKeys(nk - 1)
	t.pool.Unpin(leaf, true)
	t.nKeys--
	return nil
}

// Cursor iterates leaf entries in key order.
type Cursor struct {
	tree  *Tree
	frame *storage.Frame
	idx   int
	hi    int64
	hasHi bool
}

// OpenScan positions a cursor at the first entry with key >= lo. If
// hasHi, iteration stops after keys > hi.
func (t *Tree) OpenScan(lo int64, hi int64, hasHi bool) (*Cursor, error) {
	t.pr.Enter(t.fns.OpenScan)
	defer t.pr.Exit()
	t.pr.Work(20)
	leaf, _, err := t.descendToLeaf(lo, false)
	if err != nil {
		return nil, err
	}
	n := asNode(leaf.Page())
	idx := t.binSearchLeaf(n, lo)
	return &Cursor{tree: t, frame: leaf, idx: idx, hi: hi, hasHi: hasHi}, nil
}

// Next yields the next (key, rid), or ok=false at the end of the range.
func (c *Cursor) Next() (int64, storage.RID, bool, error) {
	t := c.tree
	t.pr.Enter(t.fns.LeafNext)
	defer t.pr.Exit()
	t.pr.Work(12)
	for {
		if c.frame == nil {
			return 0, storage.InvalidRID, false, nil
		}
		n := asNode(c.frame.Page())
		if c.idx < n.nKeys() {
			k := n.leafKey(c.idx)
			if c.hasHi && k > c.hi {
				c.Close()
				return 0, storage.InvalidRID, false, nil
			}
			rid := n.leafRID(c.idx)
			t.pr.Data(storage.PageAddr(n.page.ID())+isa.Addr(leafEntryOff+c.idx*leafEntrySz), leafEntrySz, false)
			c.idx++
			return k, rid, true, nil
		}
		next := n.page.Next()
		t.pool.Unpin(c.frame, false)
		c.frame = nil
		if next == storage.InvalidPageID {
			return 0, storage.InvalidRID, false, nil
		}
		frame, err := t.pool.GetPage(next)
		if err != nil {
			return 0, storage.InvalidRID, false, err
		}
		c.frame = frame
		c.idx = 0
	}
}

// Close releases the cursor's pin.
func (c *Cursor) Close() {
	if c.frame != nil {
		c.tree.pool.Unpin(c.frame, false)
		c.frame = nil
	}
}
