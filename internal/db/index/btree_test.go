package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"cgp/internal/db/storage"
)

func newTree(t *testing.T, frames int) *Tree {
	t.Helper()
	d := storage.NewDisk()
	bp := storage.NewBufferPool(d, frames, nil, storage.Funcs{})
	tr, err := Create("test", bp, nil, Funcs{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func rid(i int) storage.RID {
	return storage.RID{Page: storage.PageID(i / 100), Slot: uint16(i % 100)}
}

func TestInsertSearchSmall(t *testing.T) {
	tr := newTree(t, 64)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(int64(i*2), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		got, err := tr.Search(int64(i * 2))
		if err != nil {
			t.Fatalf("search %d: %v", i*2, err)
		}
		if got != rid(i) {
			t.Fatalf("search %d = %v, want %v", i*2, got, rid(i))
		}
	}
	if _, err := tr.Search(1); err == nil {
		t.Error("search of absent key succeeded")
	}
	if tr.Len() != 100 {
		t.Errorf("len = %d", tr.Len())
	}
}

func TestSplitsGrowTree(t *testing.T) {
	tr := newTree(t, 256)
	n := LeafCapacity*3 + 7
	for i := 0; i < n; i++ {
		if err := tr.Insert(int64(i), rid(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tr.Height() < 2 {
		t.Errorf("height = %d after %d inserts (leaf cap %d)", tr.Height(), n, LeafCapacity)
	}
	for _, k := range []int64{0, int64(n / 2), int64(n - 1)} {
		if _, err := tr.Search(k); err != nil {
			t.Errorf("key %d lost after splits: %v", k, err)
		}
	}
}

func TestRandomOrderInsert(t *testing.T) {
	tr := newTree(t, 256)
	rng := rand.New(rand.NewSource(5))
	keys := rng.Perm(2000)
	for i, k := range keys {
		if err := tr.Insert(int64(k), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		got, err := tr.Search(int64(k))
		if err != nil || got != rid(i) {
			t.Fatalf("key %d: %v, %v", k, got, err)
		}
	}
}

func TestRangeScan(t *testing.T) {
	tr := newTree(t, 256)
	for i := 0; i < 1000; i++ {
		tr.Insert(int64(i), rid(i))
	}
	cur, err := tr.OpenScan(100, 199, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var got []int64
	for {
		k, r, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if r != rid(int(k)) {
			t.Fatalf("key %d has rid %v", k, r)
		}
		got = append(got, k)
	}
	if len(got) != 100 {
		t.Fatalf("range returned %d keys", len(got))
	}
	for i, k := range got {
		if k != int64(100+i) {
			t.Fatalf("key %d = %d, want %d (sorted)", i, k, 100+i)
		}
	}
}

func TestScanUnboundedFromMiddle(t *testing.T) {
	tr := newTree(t, 256)
	for i := 0; i < 300; i++ {
		tr.Insert(int64(i*3), rid(i))
	}
	cur, err := tr.OpenScan(500, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	count := 0
	prev := int64(-1)
	for {
		k, _, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if k < 500 || k <= prev {
			t.Fatalf("out of order or range: %d after %d", k, prev)
		}
		prev = k
		count++
	}
	// keys 501..897 divisible by 3: 898/3 - 501/3 = 132
	if count == 0 {
		t.Fatal("empty scan")
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := newTree(t, 256)
	for i := 0; i < 5; i++ {
		tr.Insert(42, rid(i))
	}
	tr.Insert(41, rid(100))
	tr.Insert(43, rid(101))
	cur, err := tr.OpenScan(42, 42, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	n := 0
	for {
		_, _, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 5 {
		t.Errorf("found %d duplicates, want 5", n)
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t, 256)
	for i := 0; i < 100; i++ {
		tr.Insert(int64(i), rid(i))
	}
	if err := tr.Delete(50); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Search(50); err == nil {
		t.Error("deleted key found")
	}
	if err := tr.Delete(50); err == nil {
		t.Error("double delete succeeded")
	}
	if tr.Len() != 99 {
		t.Errorf("len = %d", tr.Len())
	}
	// Neighbours unaffected.
	if _, err := tr.Search(49); err != nil {
		t.Error("neighbour lost")
	}
	if _, err := tr.Search(51); err != nil {
		t.Error("neighbour lost")
	}
}

func TestPinsReleased(t *testing.T) {
	d := storage.NewDisk()
	bp := storage.NewBufferPool(d, 64, nil, storage.Funcs{})
	tr, _ := Create("t", bp, nil, Funcs{})
	for i := 0; i < 3000; i++ {
		if err := tr.Insert(int64(i), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		tr.Search(int64(i * 17 % 3000))
	}
	cur, _ := tr.OpenScan(0, 100, true)
	for {
		_, _, ok, _ := cur.Next()
		if !ok {
			break
		}
	}
	cur.Close()
	if bp.PinnedFrames() != 0 {
		t.Errorf("%d frames still pinned after tree ops", bp.PinnedFrames())
	}
}

// Property: for any multiset of keys, a full scan returns exactly the
// sorted multiset.
func TestSortedIterationProperty(t *testing.T) {
	f := func(raw []int16) bool {
		d := storage.NewDisk()
		bp := storage.NewBufferPool(d, 256, nil, storage.Funcs{})
		tr, err := Create("prop", bp, nil, Funcs{})
		if err != nil {
			return false
		}
		want := make([]int64, 0, len(raw))
		for i, k := range raw {
			key := int64(k)
			if err := tr.Insert(key, rid(i)); err != nil {
				return false
			}
			want = append(want, key)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		cur, err := tr.OpenScan(-1<<40, 0, false)
		if err != nil {
			return false
		}
		defer cur.Close()
		var got []int64
		for {
			k, _, ok, err := cur.Next()
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			got = append(got, k)
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
