package db

import (
	"fmt"

	"cgp/internal/db/exec"
	"cgp/internal/db/heap"
	"cgp/internal/program"
	"cgp/internal/trace"
)

// Query is one workload query: a name and a plan builder. The builder
// returns the root iterator and, optionally, a temp file the results
// are materialized into (the Wisconsin queries are SELECT ... INTO).
type Query struct {
	Name  string
	Build func(e *Engine, ctx *exec.Context) (exec.Iterator, *heap.File, error)
}

// QueryResult reports one query's outcome.
type QueryResult struct {
	Name string
	Rows int64
}

// queryThread is the scheduler's per-query state.
type queryThread struct {
	q      Query
	tracer *trace.Tracer
	ctx    *exec.Context
	it     exec.Iterator
	target *heap.File
	rows   int64
	opened bool
	done   bool
	err    error
}

// RunConcurrent executes queries as cooperatively scheduled threads,
// emitting a single interleaved trace into out (which may be
// trace.Discard for correctness-only runs). Each thread gets its own
// tracer over img; the scheduler switches threads every quantum root
// tuples, emitting a context-switch event, exactly the shape of the
// paper's concurrently executing query workloads (§4.1).
func (e *Engine) RunConcurrent(queries []Query, img *program.Image, out trace.Consumer, quantum int, seed int64) ([]QueryResult, error) {
	if quantum <= 0 {
		quantum = 7
	}
	threads := make([]*queryThread, len(queries))
	for i, q := range queries {
		var tr *trace.Tracer
		if img != nil {
			tr = trace.NewTracer(img, out, seed+int64(i)*7919)
		}
		threads[i] = &queryThread{q: q, tracer: tr}
	}

	active := len(threads)
	for active > 0 {
		for i, th := range threads {
			if th.done {
				continue
			}
			e.Pr.SetTracer(th.tracer)
			if th.tracer != nil {
				out.Event(trace.Event{Kind: trace.KindSwitch, N: int32(i)})
			}
			e.runSlice(th, quantum)
			if th.done {
				active--
				if th.err != nil {
					e.Pr.SetTracer(nil)
					return nil, fmt.Errorf("db: query %s: %w", th.q.Name, th.err)
				}
			}
		}
	}
	e.Pr.SetTracer(nil)

	results := make([]QueryResult, len(threads))
	for i, th := range threads {
		results[i] = QueryResult{Name: th.q.Name, Rows: th.rows}
	}
	return results, nil
}

// runSlice advances one query by up to quantum root tuples.
func (e *Engine) runSlice(th *queryThread, quantum int) {
	fail := func(err error) {
		th.err = err
		th.done = true
	}
	if !th.opened {
		// The upper layers of Figure 1 run once per query: parse,
		// optimize, schedule, then begin execution.
		txn := e.Txns.Begin()
		th.ctx = e.NewContext(txn)
		e.Pr.Enter(e.Fns.Exec.QueryParse)
		e.Pr.Work(420)
		e.Pr.Exit()
		e.Pr.Enter(e.Fns.Exec.QueryOptimize)
		e.Pr.Work(560)
		e.Pr.Exit()
		e.Pr.Enter(e.Fns.Exec.QuerySchedule)
		e.Pr.Work(120)
		e.Pr.Exit()
		it, target, err := th.q.Build(e, th.ctx)
		if err != nil {
			fail(err)
			return
		}
		th.it, th.target = it, target
		e.Pr.Enter(e.Fns.Exec.QueryExecute)
		e.Pr.Work(60)
		if err := th.it.Open(); err != nil {
			e.Pr.Exit()
			fail(err)
			return
		}
		th.opened = true
	}
	for n := 0; n < quantum; n++ {
		t, ok, err := th.it.Next()
		if err != nil {
			e.Pr.Exit() // QueryExecute
			fail(err)
			return
		}
		if !ok {
			if err := th.it.Close(); err != nil {
				e.Pr.Exit()
				fail(err)
				return
			}
			e.Pr.Exit() // QueryExecute
			if err := e.Txns.Commit(th.ctx.Txn); err != nil {
				fail(err)
				return
			}
			th.done = true
			return
		}
		th.rows++
		if th.target != nil {
			if _, err := th.target.CreateRec(th.ctx.Txn, t.Buf); err != nil {
				e.Pr.Exit()
				fail(err)
				return
			}
		}
	}
}
