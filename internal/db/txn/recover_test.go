package txn_test

import (
	"fmt"
	"testing"

	"cgp/internal/db/heap"
	"cgp/internal/db/lock"
	"cgp/internal/db/storage"
	"cgp/internal/db/txn"
)

type crashEnv struct {
	disk  *storage.Disk
	log   *txn.Log
	pool  *storage.BufferPool
	locks *lock.Manager
	txns  *txn.Manager
	file  *heap.File
}

func newCrashEnv(t *testing.T) *crashEnv {
	t.Helper()
	d := storage.NewDisk()
	pool := storage.NewBufferPool(d, 64, nil, storage.Funcs{})
	locks := lock.NewManager(nil, lock.Funcs{})
	log := txn.NewLog(nil, txn.Funcs{})
	txns := txn.NewManager(locks, log, nil, txn.Funcs{})
	f, err := heap.Create("t", pool, locks, nil, heap.Funcs{})
	if err != nil {
		t.Fatal(err)
	}
	return &crashEnv{disk: d, log: log, pool: pool, locks: locks, txns: txns, file: f}
}

// crash drops the buffer pool WITHOUT flushing: only what reached disk
// plus the WAL survives.
func (e *crashEnv) crash(t *testing.T) *heap.File {
	t.Helper()
	if _, err := txn.Recover(e.disk, e.log); err != nil {
		t.Fatal(err)
	}
	pool := storage.NewBufferPool(e.disk, 64, nil, storage.Funcs{})
	locks := lock.NewManager(nil, lock.Funcs{})
	f, err := heap.Open("t", e.file.FirstPage(), pool, locks, nil, heap.Funcs{})
	if err != nil {
		t.Fatal(err)
	}
	e.pool = pool
	e.locks = locks
	e.txns = txn.NewManager(locks, txn.NewLog(nil, txn.Funcs{}), nil, txn.Funcs{})
	return f
}

func TestRecoverCommittedInserts(t *testing.T) {
	e := newCrashEnv(t)
	tx := e.txns.Begin()
	want := map[string]bool{}
	for i := 0; i < 120; i++ {
		rec := fmt.Sprintf("record-%04d", i)
		if _, err := e.file.CreateRec(tx, []byte(rec)); err != nil {
			t.Fatal(err)
		}
		want[rec] = true
	}
	if err := e.txns.Commit(tx); err != nil {
		t.Fatal(err)
	}
	// No FlushAll: the dirty pages die with the pool.
	recovered := e.crash(t)

	if recovered.NumRecords() != 120 {
		t.Fatalf("recovered %d records, want 120", recovered.NumRecords())
	}
	tx2 := e.txns.Begin()
	scan := recovered.OpenScan(tx2)
	defer scan.Close()
	seen := 0
	for {
		rec, _, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if !want[string(rec)] {
			t.Fatalf("recovered unexpected record %q", rec)
		}
		seen++
	}
	if seen != 120 {
		t.Fatalf("scan after recovery saw %d records", seen)
	}
}

func TestRecoverSkipsUncommitted(t *testing.T) {
	e := newCrashEnv(t)
	tx := e.txns.Begin()
	if _, err := e.file.CreateRec(tx, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := e.txns.Commit(tx); err != nil {
		t.Fatal(err)
	}
	tx2 := e.txns.Begin()
	if _, err := e.file.CreateRec(tx2, []byte("in-flight")); err != nil {
		t.Fatal(err)
	}
	// tx2 never commits; crash.
	recovered := e.crash(t)
	if recovered.NumRecords() != 1 {
		t.Fatalf("recovered %d records, want 1 (uncommitted work replayed?)", recovered.NumRecords())
	}
}

func TestRecoverUpdateAndDelete(t *testing.T) {
	e := newCrashEnv(t)
	tx := e.txns.Begin()
	ridA, _ := e.file.CreateRec(tx, []byte("aaaaaaaa"))
	ridB, _ := e.file.CreateRec(tx, []byte("bbbbbbbb"))
	if err := e.file.UpdateRec(tx, ridA, []byte("AAAAAAAA")); err != nil {
		t.Fatal(err)
	}
	if err := e.file.DeleteRec(tx, ridB); err != nil {
		t.Fatal(err)
	}
	e.txns.Commit(tx)
	recovered := e.crash(t)

	tx2 := e.txns.Begin()
	got, err := recovered.ReadRec(tx2, ridA)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "AAAAAAAA" {
		t.Errorf("recovered update = %q", got)
	}
	if _, err := recovered.ReadRec(tx2, ridB); err == nil {
		t.Error("deleted record came back after recovery")
	}
}

func TestRecoverIdempotent(t *testing.T) {
	e := newCrashEnv(t)
	tx := e.txns.Begin()
	for i := 0; i < 40; i++ {
		e.file.CreateRec(tx, []byte(fmt.Sprintf("r%03d", i)))
	}
	e.txns.Commit(tx)
	// Flush SOME state to disk, then recover twice: page LSNs must
	// prevent double application.
	if err := e.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Recover(e.disk, e.log); err != nil {
		t.Fatal(err)
	}
	n, err := txn.Recover(e.disk, e.log)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("second recovery replayed %d records (not idempotent)", n)
	}
	recovered := e.crash(t)
	if recovered.NumRecords() != 40 {
		t.Fatalf("records = %d", recovered.NumRecords())
	}
}

func TestRecoverPartialFlush(t *testing.T) {
	// The canonical WAL scenario: some dirty pages were evicted (and so
	// flushed), others were not; the LSN check replays exactly the gap.
	d := storage.NewDisk()
	pool := storage.NewBufferPool(d, 4, nil, storage.Funcs{}) // tiny: forces mid-run evictions
	locks := lock.NewManager(nil, lock.Funcs{})
	log := txn.NewLog(nil, txn.Funcs{})
	txns := txn.NewManager(locks, log, nil, txn.Funcs{})
	f, err := heap.Create("t", pool, locks, nil, heap.Funcs{})
	if err != nil {
		t.Fatal(err)
	}
	tx := txns.Begin()
	rec := make([]byte, 700) // ~5 records per page -> many pages, many evictions
	for i := 0; i < 60; i++ {
		rec[0] = byte(i)
		if _, err := f.CreateRec(tx, rec); err != nil {
			t.Fatal(err)
		}
	}
	txns.Commit(tx)

	if _, err := txn.Recover(d, log); err != nil {
		t.Fatal(err)
	}
	pool2 := storage.NewBufferPool(d, 64, nil, storage.Funcs{})
	locks2 := lock.NewManager(nil, lock.Funcs{})
	f2, err := heap.Open("t", f.FirstPage(), pool2, locks2, nil, heap.Funcs{})
	if err != nil {
		t.Fatal(err)
	}
	if f2.NumRecords() != 60 {
		t.Fatalf("recovered %d records, want 60", f2.NumRecords())
	}
}
