// Package txn provides transactions over the lock manager and a
// write-ahead log: begin/commit/abort, two-phase lock release, and
// LSN-stamped log records. It is the transaction-management facility of
// the storage-manager layer (Figure 1).
package txn

import (
	"fmt"

	"cgp/internal/db/lock"
	"cgp/internal/db/probe"
	"cgp/internal/db/storage"
	"cgp/internal/isa"
	"cgp/internal/program"
)

// ID identifies a transaction.
type ID uint64

// Funcs holds the instrumented-function IDs of the transaction layer.
type Funcs struct {
	TxnBegin  program.FuncID
	TxnCommit program.FuncID
	TxnAbort  program.FuncID
	LogAppend program.FuncID
	LogForce  program.FuncID
}

// RegisterFuncs registers the transaction-layer functions.
func RegisterFuncs(reg *program.Registry) Funcs {
	return Funcs{
		TxnBegin:  reg.Register("Txn_begin", 180),
		TxnCommit: reg.Register("Txn_commit", 320),
		TxnAbort:  reg.Register("Txn_abort", 300),
		LogAppend: reg.Register("Log_append", 150),
		LogForce:  reg.Register("Log_force", 220),
	}
}

// LogRecordType discriminates WAL records.
type LogRecordType uint8

const (
	// LogUpdate records a generic page modification (size only; not
	// replayable — kept for non-recoverable structures like B+-tree
	// pages, which recovery rebuilds instead).
	LogUpdate LogRecordType = iota
	// LogCommit marks a committed transaction.
	LogCommit
	// LogAbort marks an aborted transaction.
	LogAbort
	// LogInsert is a physiological record insertion: page + slot + bytes.
	LogInsert
	// LogRecUpdate is an in-place record overwrite.
	LogRecUpdate
	// LogRecDelete is a slot deletion.
	LogRecDelete
	// LogFormatPage initializes a fresh page.
	LogFormatPage
	// LogSetNext links a page chain.
	LogSetNext
)

// LogRecord is one WAL entry.
type LogRecord struct {
	LSN    uint64
	Txn    ID
	Type   LogRecordType
	PageID storage.PageID
	Slot   uint16
	Bytes  int
	// Rec is the after-image payload of LogInsert/LogRecUpdate.
	Rec []byte
	// Next is LogSetNext's new chain link.
	Next storage.PageID
}

// logRegion is where WAL writes land in the simulated data space.
const logRegion = isa.Addr(0x1000_0000)

// Log is an append-only write-ahead log.
type Log struct {
	records  []LogRecord
	nextLSN  uint64
	flushed  uint64
	tailAddr isa.Addr
	pr       *probe.Probe
	fns      Funcs
}

// NewLog builds an empty log.
func NewLog(pr *probe.Probe, fns Funcs) *Log {
	return &Log{nextLSN: 1, tailAddr: isa.DataBase + logRegion, pr: pr, fns: fns}
}

// Append adds a record and returns its LSN.
func (l *Log) Append(rec LogRecord) uint64 {
	l.pr.Enter(l.fns.LogAppend)
	defer l.pr.Exit()
	l.pr.Work(20)
	rec.LSN = l.nextLSN
	l.nextLSN++
	size := 32 + rec.Bytes
	l.pr.Data(l.tailAddr, size, true)
	l.tailAddr += isa.Addr(size)
	l.records = append(l.records, rec)
	return rec.LSN
}

// Force flushes the log through lsn (group commit would batch here).
func (l *Log) Force(lsn uint64) {
	l.pr.Enter(l.fns.LogForce)
	defer l.pr.Exit()
	l.pr.Work(40)
	if lsn > l.flushed {
		l.flushed = lsn
	}
}

// FlushedLSN returns the highest durable LSN.
func (l *Log) FlushedLSN() uint64 { return l.flushed }

// Len returns the number of log records.
func (l *Log) Len() int { return len(l.records) }

// Records returns the log contents (for recovery tests).
func (l *Log) Records() []LogRecord { return l.records }

// Txn is one transaction.
type Txn struct {
	id        ID
	mgr       *Manager
	active    bool
	lastLSN   uint64
	nUpdates  int
	committed bool
}

// ID returns the transaction identifier.
func (t *Txn) ID() ID { return t.id }

// Owner returns the lock-manager owner token.
func (t *Txn) Owner() lock.Owner { return lock.Owner(t.id) }

// Active reports whether the transaction is in flight.
func (t *Txn) Active() bool { return t.active }

// Committed reports whether the transaction committed.
func (t *Txn) Committed() bool { return t.committed }

// LogUpdate appends a generic (non-replayable) update record for a page
// this txn modified.
func (t *Txn) LogUpdate(pageID storage.PageID, bytes int) uint64 {
	return t.log(LogRecord{Type: LogUpdate, PageID: pageID, Bytes: bytes})
}

// LogInsert appends a replayable record-insertion entry.
func (t *Txn) LogInsert(pageID storage.PageID, slot uint16, rec []byte) uint64 {
	cp := make([]byte, len(rec))
	copy(cp, rec)
	return t.log(LogRecord{Type: LogInsert, PageID: pageID, Slot: slot, Bytes: len(rec), Rec: cp})
}

// LogRecUpdate appends a replayable in-place record update.
func (t *Txn) LogRecUpdate(pageID storage.PageID, slot uint16, rec []byte) uint64 {
	cp := make([]byte, len(rec))
	copy(cp, rec)
	return t.log(LogRecord{Type: LogRecUpdate, PageID: pageID, Slot: slot, Bytes: len(rec), Rec: cp})
}

// LogRecDelete appends a replayable record deletion.
func (t *Txn) LogRecDelete(pageID storage.PageID, slot uint16) uint64 {
	return t.log(LogRecord{Type: LogRecDelete, PageID: pageID, Slot: slot})
}

// LogFormatPage appends a replayable page initialization.
func (t *Txn) LogFormatPage(pageID storage.PageID) uint64 {
	return t.log(LogRecord{Type: LogFormatPage, PageID: pageID})
}

// LogSetNext appends a replayable chain link.
func (t *Txn) LogSetNext(pageID, next storage.PageID) uint64 {
	return t.log(LogRecord{Type: LogSetNext, PageID: pageID, Next: next})
}

func (t *Txn) log(rec LogRecord) uint64 {
	rec.Txn = t.id
	lsn := t.mgr.log.Append(rec)
	t.lastLSN = lsn
	t.nUpdates++
	return lsn
}

// Manager creates and completes transactions.
type Manager struct {
	next  ID
	locks *lock.Manager
	log   *Log
	pr    *probe.Probe
	fns   Funcs

	begun     int64
	committed int64
	aborted   int64
}

// NewManager builds a transaction manager over a lock manager and log.
func NewManager(locks *lock.Manager, log *Log, pr *probe.Probe, fns Funcs) *Manager {
	return &Manager{next: 1, locks: locks, log: log, pr: pr, fns: fns}
}

// Locks returns the lock manager.
func (m *Manager) Locks() *lock.Manager { return m.locks }

// Log returns the WAL.
func (m *Manager) Log() *Log { return m.log }

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	m.pr.Enter(m.fns.TxnBegin)
	defer m.pr.Exit()
	m.pr.Work(26)
	t := &Txn{id: m.next, mgr: m, active: true}
	m.next++
	m.begun++
	return t
}

// Commit forces the log and releases the transaction's locks.
func (m *Manager) Commit(t *Txn) error {
	if !t.active {
		return fmt.Errorf("txn: commit of inactive transaction %d", t.id)
	}
	m.pr.Enter(m.fns.TxnCommit)
	defer m.pr.Exit()
	m.pr.Work(40)
	lsn := m.log.Append(LogRecord{Txn: t.id, Type: LogCommit})
	m.log.Force(lsn)
	m.locks.ReleaseAll(t.Owner())
	t.active = false
	t.committed = true
	m.committed++
	return nil
}

// Abort releases locks without committing (undo is logged, not applied:
// the workloads never abort mid-update).
func (m *Manager) Abort(t *Txn) error {
	if !t.active {
		return fmt.Errorf("txn: abort of inactive transaction %d", t.id)
	}
	m.pr.Enter(m.fns.TxnAbort)
	defer m.pr.Exit()
	m.pr.Work(36)
	m.log.Append(LogRecord{Txn: t.id, Type: LogAbort})
	m.locks.ReleaseAll(t.Owner())
	t.active = false
	m.aborted++
	return nil
}

// Counts returns (begun, committed, aborted).
func (m *Manager) Counts() (int64, int64, int64) {
	return m.begun, m.committed, m.aborted
}
