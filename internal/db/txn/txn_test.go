package txn

import (
	"testing"

	"cgp/internal/db/lock"
	"cgp/internal/db/storage"
)

func newMgr() *Manager {
	locks := lock.NewManager(nil, lock.Funcs{})
	log := NewLog(nil, Funcs{})
	return NewManager(locks, log, nil, Funcs{})
}

func TestCommitReleasesLocks(t *testing.T) {
	m := newMgr()
	tx := m.Begin()
	if !tx.Active() {
		t.Fatal("txn not active after begin")
	}
	if err := m.Locks().LockPage(tx.Owner(), 5, lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if tx.Active() || !tx.Committed() {
		t.Error("txn state wrong after commit")
	}
	if m.Locks().HeldBy(tx.Owner()) != 0 {
		t.Error("locks survive commit")
	}
	// Another txn can now lock the page.
	tx2 := m.Begin()
	if err := m.Locks().LockPage(tx2.Owner(), 5, lock.Exclusive); err != nil {
		t.Errorf("lock after commit: %v", err)
	}
}

func TestAbortReleasesLocks(t *testing.T) {
	m := newMgr()
	tx := m.Begin()
	m.Locks().LockPage(tx.Owner(), 5, lock.Exclusive)
	if err := m.Abort(tx); err != nil {
		t.Fatal(err)
	}
	if tx.Committed() {
		t.Error("aborted txn reports committed")
	}
	if m.Locks().HeldBy(tx.Owner()) != 0 {
		t.Error("locks survive abort")
	}
}

func TestDoubleCommitFails(t *testing.T) {
	m := newMgr()
	tx := m.Begin()
	m.Commit(tx)
	if err := m.Commit(tx); err == nil {
		t.Error("double commit succeeded")
	}
	if err := m.Abort(tx); err == nil {
		t.Error("abort after commit succeeded")
	}
}

func TestLogLSNsMonotonic(t *testing.T) {
	m := newMgr()
	tx := m.Begin()
	var prev uint64
	for i := 0; i < 10; i++ {
		lsn := tx.LogUpdate(storage.PageID(i), 100)
		if lsn <= prev {
			t.Fatalf("LSN %d after %d", lsn, prev)
		}
		prev = lsn
	}
	if m.Log().Len() != 10 {
		t.Errorf("log has %d records", m.Log().Len())
	}
}

func TestCommitForcesLog(t *testing.T) {
	m := newMgr()
	tx := m.Begin()
	tx.LogUpdate(1, 50)
	m.Commit(tx)
	log := m.Log()
	recs := log.Records()
	last := recs[len(recs)-1]
	if last.Type != LogCommit || last.Txn != tx.ID() {
		t.Errorf("last record = %+v", last)
	}
	if log.FlushedLSN() < last.LSN {
		t.Errorf("commit record not durable: flushed %d < %d", log.FlushedLSN(), last.LSN)
	}
}

func TestAbortLogged(t *testing.T) {
	m := newMgr()
	tx := m.Begin()
	m.Abort(tx)
	recs := m.Log().Records()
	if len(recs) != 1 || recs[0].Type != LogAbort {
		t.Errorf("log = %+v", recs)
	}
}

func TestDistinctIDs(t *testing.T) {
	m := newMgr()
	a, b := m.Begin(), m.Begin()
	if a.ID() == b.ID() {
		t.Error("duplicate txn IDs")
	}
	begun, committed, aborted := m.Counts()
	if begun != 2 || committed != 0 || aborted != 0 {
		t.Errorf("counts = %d/%d/%d", begun, committed, aborted)
	}
}
