package txn

import (
	"fmt"

	"cgp/internal/db/storage"
)

// Redo-only recovery in the ARIES style: the log carries physiological
// records (logical within a page, physical across pages); after a
// crash, Recover replays the records of committed transactions against
// the disk image, using each page's LSN to keep replay idempotent.
// The simulated workloads never need undo (every transaction commits),
// so aborted/in-flight transactions are simply not replayed.

// Recover applies the committed tail of log to disk. It returns the
// number of records replayed.
func Recover(disk *storage.Disk, log *Log) (int, error) {
	// Pass 1: find committed transactions.
	committed := make(map[ID]bool)
	for _, rec := range log.Records() {
		if rec.Type == LogCommit {
			committed[rec.Txn] = true
		}
	}
	// Pass 2: redo in LSN order.
	replayed := 0
	buf := make([]byte, storage.PageSize)
	for _, rec := range log.Records() {
		if !committed[rec.Txn] {
			continue
		}
		applied, err := redoOne(disk, rec, buf)
		if err != nil {
			return replayed, fmt.Errorf("txn: redo LSN %d: %w", rec.LSN, err)
		}
		if applied {
			replayed++
		}
	}
	return replayed, nil
}

// redoOne applies one record if the target page has not already seen it.
func redoOne(disk *storage.Disk, rec LogRecord, buf []byte) (bool, error) {
	switch rec.Type {
	case LogCommit, LogAbort, LogUpdate:
		return false, nil
	}
	if rec.Type == LogFormatPage {
		// Formatting ignores prior contents; the LSN check still
		// applies (the page may have been formatted and then updated).
		if err := disk.Read(rec.PageID, buf); err != nil {
			return false, err
		}
		page := storage.AsPage(buf)
		if page.LSN() >= rec.LSN {
			return false, nil
		}
		page = storage.Format(buf, rec.PageID)
		page.SetLSN(rec.LSN)
		return true, disk.Write(rec.PageID, buf)
	}
	if err := disk.Read(rec.PageID, buf); err != nil {
		return false, err
	}
	page := storage.AsPage(buf)
	if page.LSN() >= rec.LSN {
		return false, nil
	}
	switch rec.Type {
	case LogInsert:
		slot, err := page.Insert(rec.Rec)
		if err != nil {
			return false, err
		}
		if slot != int(rec.Slot) {
			return false, fmt.Errorf("replayed insert landed in slot %d, logged %d", slot, rec.Slot)
		}
	case LogRecUpdate:
		if err := page.Update(int(rec.Slot), rec.Rec); err != nil {
			return false, err
		}
	case LogRecDelete:
		if !page.Delete(int(rec.Slot)) {
			return false, fmt.Errorf("replayed delete of missing slot %d", rec.Slot)
		}
	case LogSetNext:
		page.SetNext(rec.Next)
	default:
		return false, fmt.Errorf("unknown log record type %d", rec.Type)
	}
	page.SetLSN(rec.LSN)
	return true, disk.Write(rec.PageID, buf)
}
