// Package catalog defines schemas, fixed-width tuple encoding, and the
// table catalog the relational operators work over. Tuples are flat
// byte records (SHORE stores untyped objects; typing lives up here).
package catalog

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Type is a column type.
type Type uint8

const (
	// Int is a 64-bit signed integer (8 bytes).
	Int Type = iota
	// String is a fixed-width padded string.
	String
)

// Column describes one attribute.
type Column struct {
	Name string
	Type Type
	// Len is the on-disk width for String columns (Int is always 8).
	Len int
}

func (c Column) width() int {
	if c.Type == Int {
		return 8
	}
	return c.Len
}

// Schema is an ordered set of columns with precomputed offsets.
type Schema struct {
	cols    []Column
	offsets []int
	size    int
	byName  map[string]int
}

// NewSchema builds a schema. Column names must be unique.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{cols: cols, byName: make(map[string]int, len(cols))}
	off := 0
	for i, c := range cols {
		if c.Type == String && c.Len <= 0 {
			panic(fmt.Sprintf("catalog: string column %q needs a width", c.Name))
		}
		if _, dup := s.byName[c.Name]; dup {
			panic(fmt.Sprintf("catalog: duplicate column %q", c.Name))
		}
		s.byName[c.Name] = i
		s.offsets = append(s.offsets, off)
		off += c.width()
		_ = i
	}
	s.size = off
	return s
}

// NumCols returns the column count.
func (s *Schema) NumCols() int { return len(s.cols) }

// Col returns column i.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Size returns the tuple width in bytes.
func (s *Schema) Size() int { return s.size }

// ColIndex returns the index of the named column; it panics on unknown
// names, which are always plan-construction bugs.
func (s *Schema) ColIndex(name string) int {
	i, ok := s.byName[name]
	if !ok {
		panic(fmt.Sprintf("catalog: no column %q in (%s)", name, s.ColNames()))
	}
	return i
}

// HasCol reports whether the schema has a column with the given name.
func (s *Schema) HasCol(name string) bool {
	_, ok := s.byName[name]
	return ok
}

// ColNames returns a comma-separated column list.
func (s *Schema) ColNames() string {
	names := make([]string, len(s.cols))
	for i, c := range s.cols {
		names[i] = c.Name
	}
	return strings.Join(names, ",")
}

// Project returns a schema of the named columns in the given order.
func (s *Schema) Project(names ...string) *Schema {
	cols := make([]Column, len(names))
	for i, n := range names {
		cols[i] = s.cols[s.ColIndex(n)]
	}
	return NewSchema(cols...)
}

// Concat joins two schemas (for join outputs), prefixing duplicate
// right-side names to keep them unique.
func Concat(left, right *Schema, rightPrefix string) *Schema {
	cols := make([]Column, 0, len(left.cols)+len(right.cols))
	cols = append(cols, left.cols...)
	for _, c := range right.cols {
		if left.HasCol(c.Name) {
			c.Name = rightPrefix + c.Name
		}
		cols = append(cols, c)
	}
	return NewSchema(cols...)
}

// Tuple is one record interpreted through a schema. Buf may alias a
// page buffer; operators that retain tuples must copy.
type Tuple struct {
	Schema *Schema
	Buf    []byte
}

// Int returns integer column i.
func (t Tuple) Int(i int) int64 {
	return int64(binary.LittleEndian.Uint64(t.Buf[t.Schema.offsets[i]:]))
}

// Str returns string column i with padding trimmed.
func (t Tuple) Str(i int) string {
	c := t.Schema.cols[i]
	raw := t.Buf[t.Schema.offsets[i] : t.Schema.offsets[i]+c.Len]
	return strings.TrimRight(string(raw), "\x00")
}

// Copy returns a tuple with its own buffer.
func (t Tuple) Copy() Tuple {
	buf := make([]byte, len(t.Buf))
	copy(buf, t.Buf)
	return Tuple{Schema: t.Schema, Buf: buf}
}

// Value is a dynamically-typed cell used when building tuples.
type Value struct {
	I     int64
	S     string
	IsStr bool
}

// V makes an integer value.
func V(i int64) Value { return Value{I: i} }

// SV makes a string value.
func SV(s string) Value { return Value{S: s, IsStr: true} }

// Encode builds a tuple buffer from values matching the schema.
func (s *Schema) Encode(vals []Value) []byte {
	if len(vals) != len(s.cols) {
		panic(fmt.Sprintf("catalog: encode %d values into %d columns", len(vals), len(s.cols)))
	}
	buf := make([]byte, s.size)
	for i, v := range vals {
		off := s.offsets[i]
		if s.cols[i].Type == Int {
			if v.IsStr {
				panic(fmt.Sprintf("catalog: string value for int column %q", s.cols[i].Name))
			}
			binary.LittleEndian.PutUint64(buf[off:], uint64(v.I))
		} else {
			if !v.IsStr {
				panic(fmt.Sprintf("catalog: int value for string column %q", s.cols[i].Name))
			}
			copy(buf[off:off+s.cols[i].Len], v.S)
		}
	}
	return buf
}

// Offset returns the byte offset of column i (for data-reference
// tracing).
func (s *Schema) Offset(i int) int { return s.offsets[i] }

// Table is a catalog entry binding a name and schema to storage.
type Table struct {
	Name   string
	Schema *Schema
	// Heap is opaque here (the exec layer stores *heap.File) to keep
	// the catalog free of storage dependencies.
	Heap any
	// Indexes maps column name -> opaque *index.Tree.
	Indexes map[string]any
	// Clustered names the column the heap is physically ordered by, if
	// any ("" otherwise).
	Clustered string
}

// Catalog is the table registry.
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Add registers a table; duplicate names panic (a wiring bug).
func (c *Catalog) Add(t *Table) {
	if _, dup := c.tables[t.Name]; dup {
		panic(fmt.Sprintf("catalog: duplicate table %q", t.Name))
	}
	c.tables[t.Name] = t
}

// Get returns the named table.
func (c *Catalog) Get(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no table %q", name)
	}
	return t, nil
}

// MustGet returns the named table or panics.
func (c *Catalog) MustGet(name string) *Table {
	t, err := c.Get(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Drop removes a table (temp cleanup).
func (c *Catalog) Drop(name string) { delete(c.tables, name) }

// Len returns the number of tables.
func (c *Catalog) Len() int { return len(c.tables) }
