package catalog

import (
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return NewSchema(
		Column{Name: "id", Type: Int},
		Column{Name: "name", Type: String, Len: 16},
		Column{Name: "score", Type: Int},
	)
}

func TestSchemaLayout(t *testing.T) {
	s := testSchema()
	if s.Size() != 8+16+8 {
		t.Errorf("size = %d", s.Size())
	}
	if s.Offset(0) != 0 || s.Offset(1) != 8 || s.Offset(2) != 24 {
		t.Errorf("offsets = %d,%d,%d", s.Offset(0), s.Offset(1), s.Offset(2))
	}
	if s.ColIndex("score") != 2 {
		t.Errorf("ColIndex(score) = %d", s.ColIndex("score"))
	}
	if !s.HasCol("name") || s.HasCol("missing") {
		t.Error("HasCol broken")
	}
	if s.ColNames() != "id,name,score" {
		t.Errorf("names = %q", s.ColNames())
	}
}

func TestEncodeDecode(t *testing.T) {
	s := testSchema()
	buf := s.Encode([]Value{V(-42), SV("alice"), V(99)})
	tup := Tuple{Schema: s, Buf: buf}
	if tup.Int(0) != -42 {
		t.Errorf("id = %d", tup.Int(0))
	}
	if tup.Str(1) != "alice" {
		t.Errorf("name = %q", tup.Str(1))
	}
	if tup.Int(2) != 99 {
		t.Errorf("score = %d", tup.Int(2))
	}
}

func TestEncodePanics(t *testing.T) {
	s := testSchema()
	cases := [][]Value{
		{V(1)},                   // wrong arity
		{SV("x"), SV("y"), V(1)}, // string into int
		{V(1), V(2), V(3)},       // int into string
	}
	for i, vals := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			s.Encode(vals)
		}()
	}
}

func TestUnknownColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	testSchema().ColIndex("nope")
}

func TestProject(t *testing.T) {
	s := testSchema()
	p := s.Project("score", "id")
	if p.NumCols() != 2 || p.Col(0).Name != "score" || p.Col(1).Name != "id" {
		t.Errorf("projected schema = %s", p.ColNames())
	}
	if p.Size() != 16 {
		t.Errorf("size = %d", p.Size())
	}
}

func TestConcatPrefixesDuplicates(t *testing.T) {
	a := NewSchema(Column{Name: "k", Type: Int}, Column{Name: "v", Type: Int})
	b := NewSchema(Column{Name: "k", Type: Int}, Column{Name: "w", Type: Int})
	c := Concat(a, b, "r_")
	if !c.HasCol("r_k") || !c.HasCol("w") || c.NumCols() != 4 {
		t.Errorf("concat = %s", c.ColNames())
	}
}

func TestTupleCopyIndependent(t *testing.T) {
	s := testSchema()
	buf := s.Encode([]Value{V(1), SV("x"), V(2)})
	orig := Tuple{Schema: s, Buf: buf}
	cp := orig.Copy()
	buf[0] = 0xFF
	if cp.Int(0) == orig.Int(0) {
		t.Error("copy aliases original buffer")
	}
}

func TestCatalogOps(t *testing.T) {
	c := NewCatalog()
	c.Add(&Table{Name: "t1", Schema: testSchema()})
	if _, err := c.Get("t1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("nope"); err == nil {
		t.Error("Get of missing table succeeded")
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
	c.Drop("t1")
	if c.Len() != 0 {
		t.Error("drop failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate add")
		}
	}()
	c.Add(&Table{Name: "x"})
	c.Add(&Table{Name: "x"})
}

// Property: int round-trip through encode/decode for arbitrary values.
func TestIntRoundTripProperty(t *testing.T) {
	s := NewSchema(Column{Name: "a", Type: Int}, Column{Name: "b", Type: Int})
	f := func(a, b int64) bool {
		tup := Tuple{Schema: s, Buf: s.Encode([]Value{V(a), V(b)})}
		return tup.Int(0) == a && tup.Int(1) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: strings shorter than the column width round-trip exactly.
func TestStringRoundTripProperty(t *testing.T) {
	s := NewSchema(Column{Name: "s", Type: String, Len: 32})
	f := func(raw string) bool {
		if len(raw) > 32 {
			raw = raw[:32]
		}
		// NUL-padded storage cannot represent trailing NULs or interior
		// semantics beyond TrimRight; skip strings with NULs.
		for i := 0; i < len(raw); i++ {
			if raw[i] == 0 {
				return true
			}
		}
		tup := Tuple{Schema: s, Buf: s.Encode([]Value{SV(raw)})}
		return tup.Str(0) == raw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
