// Package heap implements heap files — unordered record files over the
// buffer pool — including the paper's pedagogical entry point Create_rec
// (Figure 2): Create_rec calls Find_page_in_buffer_pool, falls back to
// Getpage_from_disk on a pool miss, then Lock_page, Update_page and
// Unlock_page. That call sequence, stable across millions of record
// insertions, is exactly the predictability CGP feeds on.
package heap

import (
	"fmt"

	"cgp/internal/db/lock"
	"cgp/internal/db/probe"
	"cgp/internal/db/storage"
	"cgp/internal/db/txn"
	"cgp/internal/program"
)

// Funcs holds the instrumented-function IDs of the record layer.
type Funcs struct {
	CreateRec  program.FuncID
	ReadRec    program.FuncID
	UpdateRec  program.FuncID
	DeleteRec  program.FuncID
	UpdatePage program.FuncID
	ScanOpen   program.FuncID
	ScanNext   program.FuncID
	ExtendFile program.FuncID
	MemcpyRec  program.FuncID
}

// RegisterFuncs registers the record-layer functions.
func RegisterFuncs(reg *program.Registry) Funcs {
	return Funcs{
		CreateRec:  reg.Register("Create_rec", 310),
		ReadRec:    reg.Register("Read_rec", 180),
		UpdateRec:  reg.Register("Update_rec", 260),
		DeleteRec:  reg.Register("Delete_rec", 240),
		UpdatePage: reg.Register("Update_page", 200),
		ScanOpen:   reg.Register("Heap_scan_open", 160),
		ScanNext:   reg.Register("Heap_scan_next", 230),
		ExtendFile: reg.Register("Extend_file", 280),
		MemcpyRec:  reg.Register("Memcpy_rec", 120),
	}
}

// File is one heap file: a chain of slotted pages.
type File struct {
	name  string
	pool  *storage.BufferPool
	locks *lock.Manager
	pr    *probe.Probe
	fns   Funcs

	first, last storage.PageID
	nRecords    int64
	nPages      int
}

// Create makes an empty heap file.
func Create(name string, pool *storage.BufferPool, locks *lock.Manager, pr *probe.Probe, fns Funcs) (*File, error) {
	f := &File{
		name:  name,
		pool:  pool,
		locks: locks,
		pr:    pr,
		fns:   fns,
		first: storage.InvalidPageID,
		last:  storage.InvalidPageID,
	}
	return f, nil
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// NumRecords returns the live record count.
func (f *File) NumRecords() int64 { return f.nRecords }

// NumPages returns the page count.
func (f *File) NumPages() int { return f.nPages }

// FirstPage returns the head of the page chain.
func (f *File) FirstPage() storage.PageID { return f.first }

// Open reattaches a heap file to an existing page chain (after
// recovery): it walks the chain to rebuild the record count and tail
// pointer.
func Open(name string, first storage.PageID, pool *storage.BufferPool, locks *lock.Manager, pr *probe.Probe, fns Funcs) (*File, error) {
	f := &File{
		name:  name,
		pool:  pool,
		locks: locks,
		pr:    pr,
		fns:   fns,
		first: first,
		last:  storage.InvalidPageID,
	}
	pid := first
	for pid != storage.InvalidPageID {
		frame, err := pool.GetPage(pid)
		if err != nil {
			return nil, err
		}
		page := frame.Page()
		for s := 0; s < page.NumSlots(); s++ {
			if _, ok := page.Get(s); ok {
				f.nRecords++
			}
		}
		f.nPages++
		f.last = pid
		pid = page.Next()
		pool.Unpin(frame, false)
	}
	return f, nil
}

// CreateRec appends a record, returning its RID. This is the paper's
// Create_rec: find the page, lock it, update it, unlock it.
func (f *File) CreateRec(t *txn.Txn, rec []byte) (storage.RID, error) {
	f.pr.Enter(f.fns.CreateRec)
	defer f.pr.Exit()
	f.pr.Work(22)

	frame, err := f.targetFrame(t)
	if err != nil {
		return storage.InvalidRID, err
	}
	page := frame.Page()
	if len(rec) > page.FreeSpace() {
		f.pool.Unpin(frame, false)
		if frame, err = f.extend(t); err != nil {
			return storage.InvalidRID, err
		}
		page = frame.Page()
	}
	pid := page.ID()
	if err := f.locks.LockPage(t.Owner(), uint32(pid), lock.Exclusive); err != nil {
		f.pool.Unpin(frame, false)
		return storage.InvalidRID, err
	}
	slot, err := f.updatePageInsert(t, page, rec)
	f.locks.UnlockPage(t.Owner(), uint32(pid))
	if err != nil {
		f.pool.Unpin(frame, false)
		return storage.InvalidRID, err
	}
	f.pool.Unpin(frame, true)
	f.nRecords++
	return storage.RID{Page: pid, Slot: uint16(slot)}, nil
}

// updatePageInsert is the paper's Update_page applied to an insertion.
func (f *File) updatePageInsert(t *txn.Txn, page storage.Page, rec []byte) (int, error) {
	f.pr.Enter(f.fns.UpdatePage)
	defer f.pr.Exit()
	f.pr.Work(16)
	slot, err := page.Insert(rec)
	if err != nil {
		return 0, err
	}
	f.pr.Enter(f.fns.MemcpyRec)
	f.pr.Work(8 + len(rec)/16)
	f.pr.Exit()
	addr, n := page.RecordAddr(slot)
	f.pr.Data(addr, n, true)
	lsn := t.LogInsert(page.ID(), uint16(slot), rec)
	page.SetLSN(lsn)
	return slot, nil
}

// targetFrame pins the page an insertion should try first (the tail of
// the chain), creating the first page on demand.
func (f *File) targetFrame(t *txn.Txn) (*storage.Frame, error) {
	if f.last == storage.InvalidPageID {
		return f.extend(t)
	}
	if frame, ok := f.pool.FindPage(f.last); ok {
		return frame, nil
	}
	return f.pool.GetPage(f.last)
}

// extend appends a fresh page to the chain.
func (f *File) extend(t *txn.Txn) (*storage.Frame, error) {
	f.pr.Enter(f.fns.ExtendFile)
	defer f.pr.Exit()
	f.pr.Work(30)
	frame, err := f.pool.NewPage()
	if err != nil {
		return nil, err
	}
	newID := frame.Page().ID()
	frame.Page().SetLSN(t.LogFormatPage(newID))
	if f.last != storage.InvalidPageID {
		prev, err := f.pool.GetPage(f.last)
		if err != nil {
			f.pool.Unpin(frame, true)
			return nil, err
		}
		prev.Page().SetNext(newID)
		prev.Page().SetLSN(t.LogSetNext(f.last, newID))
		f.pool.Unpin(prev, true)
	} else {
		f.first = newID
	}
	f.last = newID
	f.nPages++
	return frame, nil
}

// ReadRec copies the record at rid into a fresh slice.
func (f *File) ReadRec(t *txn.Txn, rid storage.RID) ([]byte, error) {
	f.pr.Enter(f.fns.ReadRec)
	defer f.pr.Exit()
	f.pr.Work(14)
	if err := f.locks.LockRecord(t.Owner(), uint32(rid.Page), rid.Slot, lock.Shared); err != nil {
		return nil, err
	}
	defer f.locks.UnlockRecord(t.Owner(), uint32(rid.Page), rid.Slot)
	frame, err := f.pool.GetPage(rid.Page)
	if err != nil {
		return nil, err
	}
	defer f.pool.Unpin(frame, false)
	page := frame.Page()
	rec, ok := page.Get(int(rid.Slot))
	if !ok {
		return nil, fmt.Errorf("heap %s: no record at %v", f.name, rid)
	}
	addr, n := page.RecordAddr(int(rid.Slot))
	f.pr.Data(addr, n, false)
	f.pr.Enter(f.fns.MemcpyRec)
	f.pr.Work(8 + len(rec)/16)
	f.pr.Exit()
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, nil
}

// UpdateRec overwrites the record at rid in place.
func (f *File) UpdateRec(t *txn.Txn, rid storage.RID, rec []byte) error {
	f.pr.Enter(f.fns.UpdateRec)
	defer f.pr.Exit()
	f.pr.Work(18)
	if err := f.locks.LockPage(t.Owner(), uint32(rid.Page), lock.Exclusive); err != nil {
		return err
	}
	defer f.locks.UnlockPage(t.Owner(), uint32(rid.Page))
	frame, err := f.pool.GetPage(rid.Page)
	if err != nil {
		return err
	}
	defer f.pool.Unpin(frame, true)
	page := frame.Page()
	f.pr.Enter(f.fns.UpdatePage)
	err = page.Update(int(rid.Slot), rec)
	if err == nil {
		addr, n := page.RecordAddr(int(rid.Slot))
		f.pr.Data(addr, n, true)
		page.SetLSN(t.LogRecUpdate(rid.Page, rid.Slot, rec))
	}
	f.pr.Exit()
	return err
}

// DeleteRec removes the record at rid.
func (f *File) DeleteRec(t *txn.Txn, rid storage.RID) error {
	f.pr.Enter(f.fns.DeleteRec)
	defer f.pr.Exit()
	f.pr.Work(16)
	if err := f.locks.LockPage(t.Owner(), uint32(rid.Page), lock.Exclusive); err != nil {
		return err
	}
	defer f.locks.UnlockPage(t.Owner(), uint32(rid.Page))
	frame, err := f.pool.GetPage(rid.Page)
	if err != nil {
		return err
	}
	defer f.pool.Unpin(frame, true)
	page := frame.Page()
	if !page.Delete(int(rid.Slot)) {
		return fmt.Errorf("heap %s: delete of missing record %v", f.name, rid)
	}
	page.SetLSN(t.LogRecDelete(rid.Page, rid.Slot))
	f.nRecords--
	return nil
}

// Scan is a forward cursor over every live record in the file.
type Scan struct {
	file  *File
	txn   *txn.Txn
	frame *storage.Frame
	pid   storage.PageID
	slot  int
}

// OpenScan starts a scan.
func (f *File) OpenScan(t *txn.Txn) *Scan {
	f.pr.Enter(f.fns.ScanOpen)
	defer f.pr.Exit()
	f.pr.Work(20)
	return &Scan{file: f, txn: t, pid: f.first, slot: 0}
}

// Next returns the next record and its RID, or ok=false at end of file.
// The returned record aliases the page buffer and is only valid until
// the next call.
func (s *Scan) Next() ([]byte, storage.RID, bool, error) {
	f := s.file
	f.pr.Enter(f.fns.ScanNext)
	defer f.pr.Exit()
	f.pr.Work(10)
	for {
		if s.pid == storage.InvalidPageID {
			s.releaseFrame()
			return nil, storage.InvalidRID, false, nil
		}
		if s.frame == nil {
			frame, err := f.pool.GetPage(s.pid)
			if err != nil {
				return nil, storage.InvalidRID, false, err
			}
			s.frame = frame
		}
		page := s.frame.Page()
		for s.slot < page.NumSlots() {
			slot := s.slot
			s.slot++
			if rec, ok := page.Get(slot); ok {
				addr, n := page.RecordAddr(slot)
				// A scan examines the record header and the predicate
				// columns; only accepted tuples are read in full (by the
				// consumer), so the scan itself touches a prefix.
				if n > 96 {
					n = 96
				}
				f.pr.Data(addr, n, false)
				return rec, storage.RID{Page: s.pid, Slot: uint16(slot)}, true, nil
			}
		}
		next := page.Next()
		s.releaseFrame()
		s.pid = next
		s.slot = 0
	}
}

// Close releases the scan's pinned page.
func (s *Scan) Close() { s.releaseFrame() }

func (s *Scan) releaseFrame() {
	if s.frame != nil {
		s.file.pool.Unpin(s.frame, false)
		s.frame = nil
	}
}
