package heap

import (
	"bytes"
	"fmt"
	"testing"

	"cgp/internal/db/lock"
	"cgp/internal/db/probe"
	"cgp/internal/db/storage"
	"cgp/internal/db/txn"
	"cgp/internal/program"
	"cgp/internal/trace"
)

type env struct {
	pool  *storage.BufferPool
	locks *lock.Manager
	txns  *txn.Manager
	file  *File
}

func newEnv(t *testing.T, frames int) *env {
	t.Helper()
	d := storage.NewDisk()
	pool := storage.NewBufferPool(d, frames, nil, storage.Funcs{})
	locks := lock.NewManager(nil, lock.Funcs{})
	log := txn.NewLog(nil, txn.Funcs{})
	txns := txn.NewManager(locks, log, nil, txn.Funcs{})
	f, err := Create("t", pool, locks, nil, Funcs{})
	if err != nil {
		t.Fatal(err)
	}
	return &env{pool: pool, locks: locks, txns: txns, file: f}
}

func TestCreateAndRead(t *testing.T) {
	e := newEnv(t, 16)
	tx := e.txns.Begin()
	var rids []storage.RID
	for i := 0; i < 50; i++ {
		rec := []byte(fmt.Sprintf("record-%03d", i))
		rid, err := e.file.CreateRec(tx, rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if e.file.NumRecords() != 50 {
		t.Errorf("records = %d", e.file.NumRecords())
	}
	for i, rid := range rids {
		got, err := e.file.ReadRec(tx, rid)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("record-%03d", i)
		if string(got) != want {
			t.Errorf("rid %v = %q, want %q", rid, got, want)
		}
	}
	e.txns.Commit(tx)
	if e.pool.PinnedFrames() != 0 {
		t.Errorf("%d pinned frames leaked", e.pool.PinnedFrames())
	}
}

func TestMultiPageGrowth(t *testing.T) {
	e := newEnv(t, 32)
	tx := e.txns.Begin()
	rec := make([]byte, 500)
	for i := 0; i < 100; i++ { // ~8 records per 4KB page -> ~13 pages
		if _, err := e.file.CreateRec(tx, rec); err != nil {
			t.Fatal(err)
		}
	}
	if e.file.NumPages() < 10 {
		t.Errorf("pages = %d, expected growth", e.file.NumPages())
	}
}

func TestUpdateAndDelete(t *testing.T) {
	e := newEnv(t, 16)
	tx := e.txns.Begin()
	rid, _ := e.file.CreateRec(tx, []byte("original!"))
	if err := e.file.UpdateRec(tx, rid, []byte("updated!!")); err != nil {
		t.Fatal(err)
	}
	got, _ := e.file.ReadRec(tx, rid)
	if string(got) != "updated!!" {
		t.Errorf("after update: %q", got)
	}
	if err := e.file.DeleteRec(tx, rid); err != nil {
		t.Fatal(err)
	}
	if _, err := e.file.ReadRec(tx, rid); err == nil {
		t.Error("read of deleted record succeeded")
	}
	if e.file.NumRecords() != 0 {
		t.Errorf("records = %d", e.file.NumRecords())
	}
}

func TestScanSeesAllLiveRecords(t *testing.T) {
	e := newEnv(t, 32)
	tx := e.txns.Begin()
	want := map[string]bool{}
	var rids []storage.RID
	for i := 0; i < 200; i++ {
		rec := []byte(fmt.Sprintf("r%04d", i))
		rid, err := e.file.CreateRec(tx, rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
		want[string(rec)] = true
	}
	// Delete every third record.
	for i := 0; i < 200; i += 3 {
		e.file.DeleteRec(tx, rids[i])
		delete(want, fmt.Sprintf("r%04d", i))
	}
	scan := e.file.OpenScan(tx)
	defer scan.Close()
	seen := map[string]bool{}
	for {
		rec, rid, ok, err := scan.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if !rid.Valid() {
			t.Fatal("invalid rid from scan")
		}
		seen[string(bytes.Clone(rec))] = true
	}
	if len(seen) != len(want) {
		t.Fatalf("scan saw %d records, want %d", len(seen), len(want))
	}
	for k := range want {
		if !seen[k] {
			t.Errorf("missing %q", k)
		}
	}
	if e.pool.PinnedFrames() != 0 {
		t.Errorf("%d pinned frames leaked by scan", e.pool.PinnedFrames())
	}
}

func TestScanEmptyFile(t *testing.T) {
	e := newEnv(t, 8)
	tx := e.txns.Begin()
	scan := e.file.OpenScan(tx)
	defer scan.Close()
	if _, _, ok, err := scan.Next(); ok || err != nil {
		t.Errorf("empty scan: ok=%v err=%v", ok, err)
	}
}

// TestFigure2CallSequence verifies the pedagogical call graph of the
// paper's Figure 2: Create_rec calls Find_page_in_buffer_pool, then
// (with a warm pool) Lock_page, Update_page, Unlock_page in that order —
// the stable sequence CGP's CGHC learns.
func TestFigure2CallSequence(t *testing.T) {
	reg := program.NewRegistry()
	sfns := storage.RegisterFuncs(reg)
	lfns := lock.RegisterFuncs(reg)
	tfns := txn.RegisterFuncs(reg)
	hfns := RegisterFuncs(reg)
	img := program.LayoutO5(reg)

	var rec trace.Capture
	tr := trace.NewTracer(img, &rec, 1)
	pr := probe.New(tr)

	d := storage.NewDisk()
	pool := storage.NewBufferPool(d, 16, pr, sfns)
	locks := lock.NewManager(pr, lfns)
	log := txn.NewLog(pr, tfns)
	txns := txn.NewManager(locks, log, pr, tfns)
	f, err := Create("fig2", pool, locks, pr, hfns)
	if err != nil {
		t.Fatal(err)
	}
	tx := txns.Begin()
	// Warm the pool with one record, then trace the second insert.
	if _, err := f.CreateRec(tx, []byte("warmup")); err != nil {
		t.Fatal(err)
	}
	rec.Events = nil
	if _, err := f.CreateRec(tx, []byte("traced")); err != nil {
		t.Fatal(err)
	}

	// Extract the sequence of direct callees of Create_rec.
	createRec := hfns.CreateRec
	var calls []string
	for _, ev := range rec.Events {
		if ev.Kind == trace.KindCall && ev.Caller == createRec {
			calls = append(calls, reg.Name(ev.Fn))
		}
	}
	want := []string{"Find_page_in_buffer_pool", "Lock_page", "Update_page", "Unlock_page"}
	// Helper calls may be interleaved; check the named subsequence.
	idx := 0
	for _, c := range calls {
		if idx < len(want) && c == want[idx] {
			idx++
		}
	}
	if idx != len(want) {
		t.Fatalf("Create_rec call sequence %v missing %v", calls, want[idx:])
	}
	// Getpage_from_disk must NOT appear (warm pool; §3.1's point).
	for _, c := range calls {
		if c == "Getpage_from_disk" {
			t.Error("warm-pool insert went to disk")
		}
	}
}
