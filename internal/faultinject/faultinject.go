// Package faultinject provides deterministic fault injectors for the
// harness's chaos tests: event-counted panics and cancellations on the
// consumer path, and seeded byte corruption of sealed recordings.
//
// Every injector is deterministic — faults fire at a fixed event count
// or at offsets derived from a caller-supplied seed — so a chaos test
// that fails reproduces exactly under the same inputs, in keeping with
// the repo's determinism rules (DESIGN.md §7).
package faultinject

import (
	"sync/atomic"

	"cgp/internal/trace"
)

// FireAt returns a function that counts its calls and invokes fire
// exactly once, on the n-th call (1-based). It is safe for concurrent
// use; later calls are no-ops. The distributed-campaign chaos tests
// hang it on the coordinator's record hook to kill a worker process at
// an exact point in the record stream, making cross-process fault
// timing as deterministic as the in-process injectors above.
func FireAt(n int64, fire func()) func() {
	var seen atomic.Int64
	return func() {
		if seen.Add(1) == n {
			fire()
		}
	}
}

// counter forwards events to inner and invokes fire exactly once, when
// the n-th event (1-based) arrives and before it is forwarded.
type counter struct {
	inner trace.Consumer
	fire  func()
	n     int64
	seen  int64
}

// Event implements trace.Consumer.
func (c *counter) Event(ev trace.Event) {
	if c.seen++; c.seen == c.n {
		c.fire()
	}
	c.inner.Event(ev)
}

// PanicAfter returns a consumer that forwards to inner and panics with
// v when the n-th event arrives. It models a crashing simulation: the
// harness must convert the panic into a *JobError for that cell only.
func PanicAfter(inner trace.Consumer, n int64, v any) trace.Consumer {
	return &counter{inner: inner, n: n, fire: func() { panic(v) }}
}

// CancelAfter returns a consumer that forwards to inner and invokes
// cancel when the n-th event arrives (the event itself still flows;
// the campaign notices at its next cancellation poll). It models an
// operator interrupt or deadline landing mid-simulation.
func CancelAfter(inner trace.Consumer, n int64, cancel func()) trace.Consumer {
	return &counter{inner: inner, n: n, fire: cancel}
}

// Corrupt XOR-flips n deterministically chosen bytes of rec, derived
// from seed by a fixed LCG, and returns the flipped offsets. It models
// in-memory corruption of a sealed trace; replaying rec must fail with
// a *trace.CorruptionError until the recording is rebuilt.
func Corrupt(rec *trace.Recording, seed int64, n int) []int64 {
	size := rec.Bytes()
	if size == 0 || n <= 0 {
		return nil
	}
	state := uint64(seed)
	offs := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		// Knuth's MMIX LCG constants; any full-period mix works here.
		state = state*6364136223846793005 + 1442695040888963407
		off := int64(state>>16) % size
		mask := byte(state>>8) | 1
		if rec.CorruptByte(off, mask) {
			offs = append(offs, off)
		}
	}
	return offs
}
