package faultinject

import (
	"net"
	"time"
)

// Connection-level injectors for the serving chaos suite. They follow
// the package's event-counted style: faults fire at exact byte
// offsets (or at offsets derived from a caller-supplied seed), so a
// failing network chaos test reproduces under the same inputs. The
// wrappers are used on the CLIENT side of a test connection to subject
// the server to slow-loris stalls, mid-frame drops, and deterministic
// frame corruption.

// faultConn wraps a net.Conn, counting bytes through Write and
// invoking per-byte-offset hooks. Reads pass through untouched.
type faultConn struct {
	net.Conn
	// beforeWrite, when set, may trim or veto the next write given the
	// absolute offset of its first byte; returning done=true makes the
	// connection close and report io errors from then on.
	beforeWrite func(off int64, p []byte) (allow int, done bool)
	// mutate, when set, may rewrite the outgoing bytes in place given
	// their absolute starting offset.
	mutate  func(off int64, p []byte)
	written int64
	dead    bool
}

// Write implements net.Conn.
func (c *faultConn) Write(p []byte) (int, error) {
	if c.dead {
		return 0, net.ErrClosed
	}
	allow := len(p)
	done := false
	if c.beforeWrite != nil {
		allow, done = c.beforeWrite(c.written, p)
	}
	if allow > len(p) {
		allow = len(p)
	}
	var n int
	var err error
	if allow > 0 {
		if c.mutate != nil {
			buf := make([]byte, allow)
			copy(buf, p[:allow])
			c.mutate(c.written, buf)
			n, err = c.Conn.Write(buf)
		} else {
			n, err = c.Conn.Write(p[:allow])
		}
		c.written += int64(n)
	}
	if err != nil {
		return n, err
	}
	if done {
		c.dead = true
		c.Conn.Close()
		if n < len(p) {
			return n, net.ErrClosed
		}
	}
	return n, nil
}

// DropAfterN returns a conn that transmits exactly n bytes and then
// closes, truncating the write that crosses the boundary — a client
// dying mid-frame. Deterministic: the drop point depends only on n and
// the byte stream, never on timing.
func DropAfterN(c net.Conn, n int64) net.Conn {
	return &faultConn{
		Conn: c,
		beforeWrite: func(off int64, p []byte) (int, bool) {
			rem := n - off
			if rem <= int64(len(p)) {
				if rem < 0 {
					rem = 0
				}
				return int(rem), true
			}
			return len(p), false
		},
	}
}

// StallConn returns a conn that stalls for d before every write that
// would carry the stream past byte n — a slow-loris client trickling
// the rest of a frame. The stall point is deterministic (a byte
// count); only the stall itself consumes wall time, which is the
// fault being modeled.
func StallConn(c net.Conn, n int64, d time.Duration) net.Conn {
	return &faultConn{
		Conn: c,
		beforeWrite: func(off int64, p []byte) (int, bool) {
			if off+int64(len(p)) > n {
				time.Sleep(d)
			}
			return len(p), false
		},
	}
}

// CorruptFrame returns a conn that XOR-flips one byte in each
// corruptEvery-byte window of the outgoing stream, at in-window
// offsets derived from seed by the package's fixed LCG — malformed
// frames with reproducible damage. The first window is left intact so
// a protocol handshake (if any) survives and the corruption lands
// mid-conversation.
func CorruptFrame(c net.Conn, seed int64, corruptEvery int64) net.Conn {
	if corruptEvery <= 0 {
		corruptEvery = 64
	}
	return &faultConn{
		Conn: c,
		mutate: func(off int64, p []byte) {
			for i := range p {
				abs := off + int64(i)
				win := abs / corruptEvery
				if win == 0 {
					continue
				}
				// One target offset per window, derived from the seed
				// and window index — stable regardless of how writes
				// are sliced.
				h := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(win)*0xBF58476D1CE4E5B9
				h ^= h >> 31
				h *= 0x94D049BB133111EB
				h ^= h >> 29
				if abs%corruptEvery == int64(h%uint64(corruptEvery)) {
					mask := byte(h>>8) | 1
					p[i] ^= mask
				}
			}
		},
	}
}
