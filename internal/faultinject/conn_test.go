package faultinject

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// pipePair returns a connected pipe and a channel yielding everything
// the far end receives until EOF.
func pipePair(t *testing.T) (net.Conn, <-chan []byte) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	got := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		tmp := make([]byte, 256)
		for {
			n, err := b.Read(tmp)
			buf.Write(tmp[:n])
			if err != nil {
				got <- buf.Bytes()
				return
			}
		}
	}()
	return a, got
}

func TestDropAfterN(t *testing.T) {
	a, got := pipePair(t)
	c := DropAfterN(a, 10)
	payload := []byte("0123456789abcdef")
	n, err := c.Write(payload)
	if n != 10 {
		t.Fatalf("crossing write passed %d bytes, want 10 (err %v)", n, err)
	}
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write after drop point succeeded, want error")
	}
	if rx := <-got; !bytes.Equal(rx, payload[:10]) {
		t.Fatalf("far end received %q, want %q", rx, payload[:10])
	}
}

func TestDropAfterNExactBoundary(t *testing.T) {
	a, got := pipePair(t)
	c := DropAfterN(a, 4)
	if n, err := c.Write([]byte("abcd")); n != 4 || err != nil {
		t.Fatalf("boundary write = (%d, %v), want (4, nil)", n, err)
	}
	if _, err := c.Write([]byte("e")); err == nil {
		t.Fatal("write after exact boundary succeeded, want error")
	}
	if rx := <-got; string(rx) != "abcd" {
		t.Fatalf("far end received %q, want abcd", rx)
	}
}

func TestStallConnDelaysCrossingWrite(t *testing.T) {
	a, got := pipePair(t)
	const stall = 30 * time.Millisecond
	c := StallConn(a, 4, stall)
	if _, err := c.Write([]byte("abcd")); err != nil { // below the stall point: no delay
		t.Fatal(err)
	}
	t0 := time.Now()
	if _, err := c.Write([]byte("efgh")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < stall {
		t.Fatalf("crossing write returned after %v, want >= %v", d, stall)
	}
	c.Close()
	if rx := <-got; string(rx) != "abcdefgh" {
		t.Fatalf("far end received %q, want abcdefgh", rx)
	}
}

func TestCorruptFrameDeterministic(t *testing.T) {
	run := func() []byte {
		a, got := pipePair(t)
		c := CorruptFrame(a, 7, 16)
		msg := bytes.Repeat([]byte("abcdefgh"), 8) // 64 bytes, 4 windows
		// Slice the writes unevenly: corruption offsets must not
		// depend on write boundaries.
		for _, cut := range [][2]int{{0, 5}, {5, 23}, {23, 64}} {
			if _, err := c.Write(msg[cut[0]:cut[1]]); err != nil {
				t.Fatal(err)
			}
		}
		c.Close()
		return <-got
	}
	first, second := run(), run()
	if !bytes.Equal(first, second) {
		t.Fatalf("corruption not deterministic:\n%x\n%x", first, second)
	}
	clean := bytes.Repeat([]byte("abcdefgh"), 8)
	if bytes.Equal(first, clean) {
		t.Fatal("stream not corrupted at all")
	}
	if !bytes.Equal(first[:16], clean[:16]) {
		t.Fatal("first window was corrupted; it must stay intact")
	}
	diff := 0
	for i := range first {
		if first[i] != clean[i] {
			diff++
		}
	}
	if diff != 3 { // windows 1..3 each flip exactly one byte
		t.Fatalf("corrupted %d bytes, want 3", diff)
	}
}
