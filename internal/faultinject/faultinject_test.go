package faultinject

import (
	"errors"
	"testing"

	"cgp/internal/isa"
	"cgp/internal/trace"
)

func events(n int) []trace.Event {
	evs := make([]trace.Event, n)
	for i := range evs {
		evs[i] = trace.Event{Kind: trace.KindRun, Addr: 0x1000 + isa.Addr(i)*4, N: 1}
	}
	return evs
}

func TestPanicAfterFiresAtExactEvent(t *testing.T) {
	var st trace.Stats
	c := PanicAfter(&st, 5, "boom")
	fired := func() (v any) {
		defer func() { v = recover() }()
		for _, ev := range events(10) {
			c.Event(ev)
		}
		return nil
	}()
	if fired != "boom" {
		t.Fatalf("recovered %v, want boom", fired)
	}
	if st.Events != 4 {
		t.Fatalf("forwarded %d events before panic, want 4", st.Events)
	}
}

func TestCancelAfterInvokesOnce(t *testing.T) {
	var st trace.Stats
	calls := 0
	c := CancelAfter(&st, 3, func() { calls++ })
	for _, ev := range events(10) {
		c.Event(ev)
	}
	if calls != 1 {
		t.Fatalf("cancel invoked %d times, want 1", calls)
	}
	if st.Events != 10 {
		t.Fatalf("forwarded %d events, want all 10 (cancel must not drop events)", st.Events)
	}
}

func TestCorruptIsDeterministicAndDetected(t *testing.T) {
	build := func() *trace.Recording {
		r := trace.NewRecorder()
		for _, ev := range events(5000) {
			r.Event(ev)
		}
		rg, err := r.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return rg
	}
	a, b := build(), build()
	offsA := Corrupt(a, 7, 3)
	offsB := Corrupt(b, 7, 3)
	if len(offsA) == 0 {
		t.Fatal("no bytes flipped")
	}
	if len(offsA) != len(offsB) {
		t.Fatalf("same seed flipped %d vs %d bytes", len(offsA), len(offsB))
	}
	for i := range offsA {
		if offsA[i] != offsB[i] {
			t.Fatalf("same seed chose different offsets: %v vs %v", offsA, offsB)
		}
	}
	var ce *trace.CorruptionError
	if err := a.Verify(); !errors.As(err, &ce) {
		t.Fatalf("Verify after Corrupt = %v, want *trace.CorruptionError", err)
	}
}
