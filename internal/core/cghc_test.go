package core

import (
	"testing"

	"cgp/internal/isa"
	"cgp/internal/prefetch"
)

// Addresses for test functions, line-aligned as real entries are.
// Spaced one line apart so they occupy distinct direct-mapped CGHC
// slots in a 2KB (64-entry) CGHC.
const (
	fnA = isa.Addr(0x400000) // caller
	fnB = isa.Addr(0x400020)
	fnC = isa.Addr(0x400040)
	fnD = isa.Addr(0x400060)
	fnE = isa.Addr(0x400080)
)

func issueSink(got *[]prefetch.Request) prefetch.Issue {
	return func(r prefetch.Request) { *got = append(*got, r) }
}

// targets extracts the distinct function starts prefetched (first line
// of each burst).
func targets(reqs []prefetch.Request, lines int) []isa.Addr {
	var out []isa.Addr
	for i := 0; i < len(reqs); i += lines {
		out = append(out, reqs[i].Addr)
	}
	return out
}

// playCall runs both CGHC accesses for "caller calls callee".
func playCall(p *CGP, caller, callee isa.Addr) []prefetch.Request {
	var got []prefetch.Request
	p.OnCall(callee, caller, issueSink(&got))
	return got
}

// playReturn runs both CGHC accesses for "callee returns to caller".
func playReturn(p *CGP, caller, callee isa.Addr) []prefetch.Request {
	var got []prefetch.Request
	p.OnReturn(caller, callee, issueSink(&got))
	return got
}

// TestCGHCWorkedExample replays §3.1's Create_rec scenario: A calls B,
// C, D in sequence; on the next invocation of A the CGHC predicts B at
// the call, C when B returns, and D when C returns.
func TestCGHCWorkedExample(t *testing.T) {
	p := New(Config{Lines: 4, L1Bytes: 2048})

	// First execution of A: nothing predicted, history learned.
	playCall(p, fnA, fnB)
	playReturn(p, fnA, fnB)
	playCall(p, fnA, fnC)
	playReturn(p, fnA, fnC)
	playCall(p, fnA, fnD)
	playReturn(p, fnA, fnD)
	// A returns: its index resets.
	playReturn(p, 0, fnA)

	// Second execution: someone calls A; slot 1 of A's entry (B) is
	// prefetched.
	reqs := playCall(p, fnE, fnA)
	if got := targets(reqs, 4); len(got) != 1 || got[0] != fnB {
		t.Fatalf("call-prefetch on A predicted %v, want [B]", got)
	}
	// B is called, B returns to A: A's index (now 2) selects C.
	playCall(p, fnA, fnB)
	reqs = playReturn(p, fnA, fnB)
	if got := targets(reqs, 4); len(got) == 0 || got[len(got)-1] != fnC {
		t.Fatalf("return-prefetch predicted %v, want C last", got)
	}
	playCall(p, fnA, fnC)
	reqs = playReturn(p, fnA, fnC)
	if got := targets(reqs, 4); got[len(got)-1] != fnD {
		t.Fatalf("return-prefetch predicted %v, want D last", got)
	}
}

func TestCGHCPrefetchesNLines(t *testing.T) {
	p := New(Config{Lines: 3, L1Bytes: 2048})
	playCall(p, fnA, fnB)
	playReturn(p, 0, fnA)
	reqs := playCall(p, fnE, fnA)
	if len(reqs) != 3 {
		t.Fatalf("issued %d lines, want 3", len(reqs))
	}
	for i, r := range reqs {
		if r.Addr != fnB+isa.Addr(i*isa.LineBytes) {
			t.Errorf("line %d addr %#x", i, r.Addr)
		}
		if r.Portion != prefetch.PortionCGHC {
			t.Errorf("line %d portion %v, want CGHC", i, r.Portion)
		}
	}
}

func TestCGHCIndexResetOnReturnUpdate(t *testing.T) {
	p := New(Config{Lines: 4, L1Bytes: 2048})
	playCall(p, fnA, fnB)
	playCall(p, fnA, fnC)
	// A returns: return update resets A's index to 1.
	playReturn(p, fnE, fnA)
	e, hit := p.finite.Lookup(fnA, false)
	if !hit {
		t.Fatal("A's entry evicted unexpectedly")
	}
	if e.Index != 1 {
		t.Errorf("index = %d after return, want 1", e.Index)
	}
	if e.Callees[0] != fnB || e.Callees[1] != fnC {
		t.Errorf("callees = %v, want [B C ...]", e.Callees[:2])
	}
}

func TestCGHCOnlyFirstEightCalleesStored(t *testing.T) {
	p := New(Config{Lines: 4, L1Bytes: 2048})
	callees := make([]isa.Addr, 10)
	for i := range callees {
		// Distinct CGHC slots, none colliding with fnA (index 0).
		callees[i] = isa.Addr(0x500020 + i*0x20)
		playCall(p, fnA, callees[i])
	}
	e, hit := p.finite.Lookup(fnA, false)
	if !hit {
		t.Fatal("entry missing")
	}
	for i := 0; i < MaxCallees; i++ {
		if e.Callees[i] != callees[i] {
			t.Errorf("slot %d = %#x, want %#x", i, e.Callees[i], callees[i])
		}
	}
	// The 9th and 10th calls must not have overwritten slot 8 (§3.2:
	// only the first 8 functions invoked are stored).
	if e.Callees[MaxCallees-1] != callees[MaxCallees-1] {
		t.Errorf("slot 8 overwritten by later calls")
	}
}

func TestCGHCMissAllocatesInvalid(t *testing.T) {
	p := New(Config{Lines: 4, L1Bytes: 2048})
	// A call-prefetch access misses: the entry is created with index 1
	// and invalid data, and no prefetch is issued.
	var got []prefetch.Request
	p.OnCall(fnB, 0, issueSink(&got)) // caller start 0 (unknown): only the prefetch access runs
	if len(got) != 0 {
		t.Fatalf("prefetch issued on cold CGHC: %v", got)
	}
	e, hit := p.finite.Lookup(fnB, false)
	if !hit {
		t.Fatal("entry not allocated on miss")
	}
	if e.Valid {
		t.Error("data entry valid without any call update")
	}
}

func TestCGHCUpdateMissSeedsSlot1(t *testing.T) {
	p := New(Config{Lines: 4, L1Bytes: 2048})
	// The update access for "A calls B" misses on A: slot 1 is set to B.
	playCall(p, fnA, fnB)
	e, hit := p.finite.Lookup(fnA, false)
	if !hit || !e.Valid || e.Callees[0] != fnB {
		t.Fatalf("update miss did not seed slot 1: %+v (hit=%v)", e, hit)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// 1KB CGHC = 32 entries. Two functions 32 entries apart collide.
	h := NewOneLevel(1024)
	a := isa.Addr(0x400000)
	b := a + 32*isa.LineBytes
	e1, _ := h.Lookup(a, true)
	e1.Valid = true
	e1.Callees[0] = fnB
	if _, hit := h.Lookup(b, true); hit {
		t.Fatal("conflicting tag reported hit")
	}
	if _, hit := h.Lookup(a, false); hit {
		t.Fatal("original entry should have been displaced")
	}
}

func TestTwoLevelSwap(t *testing.T) {
	h := NewTwoLevel(1024, 32*1024)
	a := isa.Addr(0x400000)
	b := a + 32*isa.LineBytes // collides with a in L1 (32 entries)
	ea, _ := h.Lookup(a, true)
	ea.Valid = true
	ea.Callees[0] = fnC
	// b displaces a from L1; a is written back to L2.
	h.Lookup(b, true)
	// a hits again: must come back from L2 with its history intact.
	ea2, hit := h.Lookup(a, false)
	if !hit {
		t.Fatal("entry lost despite two-level CGHC")
	}
	if ea2.Callees[0] != fnC {
		t.Errorf("history lost in swap: %v", ea2.Callees[0])
	}
	if h.Stats().LevelTwoHits == 0 {
		t.Error("no L2 hit recorded")
	}
	// And b must now live in L2 (it was displaced by the swap).
	if _, hit := h.Lookup(b, false); !hit {
		t.Error("swapped-out entry lost")
	}
}

func TestInfiniteKeepsWholeSequence(t *testing.T) {
	p := New(Config{Lines: 4, Infinite: true})
	for i := 0; i < 20; i++ {
		playCall(p, fnA, isa.Addr(0x500020+i*0x20))
	}
	e, hit := p.infinite.LookupInf(fnA, false)
	if !hit {
		t.Fatal("entry missing")
	}
	if len(e.Callees) != 20 {
		t.Errorf("infinite CGHC stored %d callees, want 20", len(e.Callees))
	}
}

func TestInfinitePredictsDeepSequences(t *testing.T) {
	p := New(Config{Lines: 1, Infinite: true})
	callees := make([]isa.Addr, 12)
	for i := range callees {
		callees[i] = isa.Addr(0x500020 + i*0x20)
		playCall(p, fnA, callees[i])
		playReturn(p, fnA, callees[i])
	}
	playReturn(p, 0, fnA) // reset
	// Replay: after the 10th call returns, the 11th is predicted —
	// beyond a finite CGHC's 8 slots.
	playCall(p, fnE, fnA)
	for i := 0; i < 10; i++ {
		playCall(p, fnA, callees[i])
		reqs := playReturn(p, fnA, callees[i])
		want := callees[i+1]
		found := false
		for _, r := range reqs {
			if r.Addr == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("after return %d: %v does not include %#x", i, reqs, want)
		}
	}
}

func TestConfigDescribe(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Lines: 4, L1Bytes: 2048, L2Bytes: 32768}, "cgp_4/CGHC-2K+32K"},
		{Config{Lines: 2, L1Bytes: 1024}, "cgp_2/CGHC-1K"},
		{Config{Lines: 4, Infinite: true}, "cgp_4/CGHC-Inf"},
	}
	for _, c := range cases {
		if got := c.cfg.Describe(); got != c.want {
			t.Errorf("Describe() = %q, want %q", got, c.want)
		}
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Lines: 0, L1Bytes: 1024},
		{Lines: 4},
		{Lines: 4, L1Bytes: 1000}, // non power-of-two entries
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v: expected panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestCGPInternalNLAttribution(t *testing.T) {
	p := New(Config{Lines: 4, L1Bytes: 2048})
	var got []prefetch.Request
	p.OnFetch(fnA, issueSink(&got))
	if len(got) != 4 {
		t.Fatalf("internal NL issued %d, want 4", len(got))
	}
	for _, r := range got {
		if r.Portion != prefetch.PortionNL {
			t.Errorf("internal NL portion = %v", r.Portion)
		}
	}
}

func TestCGPStatsCounting(t *testing.T) {
	p := New(Config{Lines: 4, L1Bytes: 2048})
	playCall(p, fnA, fnB)
	playReturn(p, fnA, fnB)
	s := p.Stats()
	if s.CallAccesses != 1 || s.ReturnAccesses != 1 {
		t.Errorf("accesses = %d/%d, want 1/1", s.CallAccesses, s.ReturnAccesses)
	}
	if s.History.UpdateMisses == 0 {
		t.Error("no update misses recorded on cold CGHC")
	}
}
