package core

import (
	"cgp/internal/isa"
	"cgp/internal/prefetch"
)

// Software is the all-software variant of CGP the paper sketches in §6:
// instead of a hardware CGHC, a compiler uses call-graph information
// from profile executions to insert prefetch instructions at call sites
// and return points. The prediction table is therefore *static* —
// frozen at "compile time" from the profile — and unbounded (it lives
// in the binary, not in a hardware cache), but it cannot adapt when the
// observed call sequence diverges from the profiled one.
//
// The issue-slot cost of the inserted prefetch instructions is not
// modelled (matching how the paper discusses the variant); Stats()
// exposes the inserted-prefetch count so callers can bound it.
type Software struct {
	lines int
	// seq maps a function's start address to its profiled callee
	// sequence (start addresses).
	seq map[isa.Addr][]isa.Addr
	// idx tracks, per function, the next call position — the state the
	// inserted code threads through registers in the real scheme.
	idx map[isa.Addr]int

	nl *prefetch.NL

	inserted int64
}

var _ prefetch.Prefetcher = (*Software)(nil)

// NewSoftware builds the software prefetcher from a static call-graph
// table (function start -> profiled callee-start sequence).
func NewSoftware(lines int, seq map[isa.Addr][]isa.Addr) *Software {
	if lines <= 0 {
		panic("core: software CGP lines must be positive")
	}
	return &Software{
		lines: lines,
		seq:   seq,
		idx:   make(map[isa.Addr]int),
		nl:    prefetch.NewNL(lines),
	}
}

// Name implements prefetch.Prefetcher.
func (p *Software) Name() string { return "swcgp_" + itoa(p.lines) }

// Inserted returns how many call-graph prefetches the "inserted
// instructions" issued.
func (p *Software) Inserted() int64 { return p.inserted }

// TableSize returns the number of functions with profiled sequences.
func (p *Software) TableSize() int { return len(p.seq) }

// OnFetch implements prefetch.Prefetcher (within-function NL, as in
// hardware CGP).
func (p *Software) OnFetch(line isa.Addr, issue prefetch.Issue) {
	p.nl.OnFetch(line, issue)
}

// OnCall implements prefetch.Prefetcher: the prologue of the callee
// contains an inserted prefetch for its profiled first callee; the call
// site in the caller advances the caller's position.
func (p *Software) OnCall(target, callerStart isa.Addr, issue prefetch.Issue) {
	if seq := p.seq[target]; len(seq) > 0 {
		p.issueFunc(seq[0], issue)
	}
	if callerStart != 0 {
		p.idx[callerStart]++ //cgplint:ignore allocfree position map is bounded by the profiled call graph; it reaches its full size during the first pass over the table
	}
}

// OnReturn implements prefetch.Prefetcher: the instruction after each
// call site prefetches the next profiled callee; the returning
// function's position resets.
func (p *Software) OnReturn(predictedCallerStart, returningStart isa.Addr, issue prefetch.Issue) {
	if predictedCallerStart != 0 {
		i := p.idx[predictedCallerStart]
		if seq := p.seq[predictedCallerStart]; i < len(seq) {
			p.issueFunc(seq[i], issue)
		}
	}
	if returningStart != 0 {
		p.idx[returningStart] = 0 //cgplint:ignore allocfree position map is bounded by the profiled call graph; it reaches its full size during the first pass over the table
	}
}

func (p *Software) issueFunc(fn isa.Addr, issue prefetch.Issue) {
	base := isa.LineAddr(fn)
	for i := 0; i < p.lines; i++ {
		p.inserted++
		issue(prefetch.Request{
			Addr:    base + isa.Addr(i*isa.LineBytes),
			Portion: prefetch.PortionCGHC,
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
