package core

import (
	"testing"

	"cgp/internal/isa"
	"cgp/internal/prefetch"
)

func swTable() map[isa.Addr][]isa.Addr {
	return map[isa.Addr][]isa.Addr{
		fnA: {fnB, fnC, fnD},
		fnB: {fnE},
	}
}

func TestSoftwarePredictsFromStaticTable(t *testing.T) {
	p := NewSoftware(4, swTable())
	// Calling A prefetches A's profiled first callee B.
	var got []prefetch.Request
	p.OnCall(fnA, fnE, func(r prefetch.Request) { got = append(got, r) })
	if len(got) != 4 || got[0].Addr != fnB {
		t.Fatalf("call-prefetch = %v", got)
	}
	if got[0].Portion != prefetch.PortionCGHC {
		t.Errorf("portion = %v", got[0].Portion)
	}
	// B is called (A's index advances), then returns: A's position 1
	// predicts C.
	p.OnCall(fnB, fnA, func(prefetch.Request) {})
	got = nil
	p.OnReturn(fnA, fnB, func(r prefetch.Request) { got = append(got, r) })
	if len(got) == 0 || got[len(got)-4].Addr != fnC {
		t.Fatalf("return-prefetch = %v, want C", got)
	}
}

func TestSoftwareIndexResets(t *testing.T) {
	p := NewSoftware(1, swTable())
	sink := func(prefetch.Request) {}
	p.OnCall(fnB, fnA, sink)
	p.OnCall(fnC, fnA, sink)
	// A returns: its position resets, so the next invocation predicts B
	// again at position 0.
	p.OnReturn(0, fnA, sink)
	var got []prefetch.Request
	p.OnCall(fnB, fnA, func(r prefetch.Request) { got = append(got, r) })
	p.OnReturn(fnA, fnB, func(r prefetch.Request) { got = append(got, r) })
	// After the first call post-reset, position 1 predicts C.
	found := false
	for _, r := range got {
		if r.Addr == fnC {
			found = true
		}
	}
	if !found {
		t.Errorf("post-reset prediction missing C: %v", got)
	}
}

func TestSoftwareUnknownFunctionSilent(t *testing.T) {
	p := NewSoftware(4, swTable())
	n := 0
	p.OnCall(fnD, fnE, func(prefetch.Request) { n++ }) // D has no profile
	if n != 0 {
		t.Errorf("issued %d prefetches for unprofiled function", n)
	}
}

func TestSoftwareStaticTableNeverLearns(t *testing.T) {
	p := NewSoftware(1, swTable())
	sink := func(prefetch.Request) {}
	// Run a divergent sequence through it repeatedly: A calls E (not in
	// the profile).
	for i := 0; i < 5; i++ {
		p.OnCall(fnE, fnA, sink)
		p.OnReturn(fnA, fnE, sink)
		p.OnReturn(0, fnA, sink)
	}
	// Predictions still come from the static table: calling A still
	// prefetches B.
	var got []prefetch.Request
	p.OnCall(fnA, 0, func(r prefetch.Request) { got = append(got, r) })
	if len(got) != 1 || got[0].Addr != fnB {
		t.Errorf("static table mutated: %v", got)
	}
}

func TestSoftwareNLWithinFunction(t *testing.T) {
	p := NewSoftware(2, swTable())
	var got []prefetch.Request
	p.OnFetch(fnA, func(r prefetch.Request) { got = append(got, r) })
	if len(got) != 2 || got[0].Portion != prefetch.PortionNL {
		t.Errorf("NL component = %v", got)
	}
}

func TestSoftwareCounters(t *testing.T) {
	p := NewSoftware(4, swTable())
	sink := func(prefetch.Request) {}
	p.OnCall(fnA, 0, sink)
	if p.Inserted() != 4 {
		t.Errorf("inserted = %d", p.Inserted())
	}
	if p.TableSize() != 2 {
		t.Errorf("table size = %d", p.TableSize())
	}
	if p.Name() != "swcgp_4" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestAssocCGHCRetainsConflictingTags(t *testing.T) {
	// Two functions that collide in a direct-mapped 1KB CGHC coexist in
	// a 2-way one.
	a := isa.Addr(0x400000)
	b := a + 16*isa.LineBytes // same set in a 2-way 1KB CGHC (16 sets)
	h := NewOneLevelAssoc(1024, 2)
	ea, _ := h.Lookup(a, true)
	ea.Valid = true
	h.Lookup(b, true)
	if _, hit := h.Lookup(a, false); !hit {
		t.Error("2-way CGHC evicted a non-conflicting tag")
	}
	// That lookup refreshed a, so b is now the LRU way: a third tag in
	// the set evicts b.
	c := a + 32*isa.LineBytes
	h.Lookup(c, true)
	if _, hit := h.Lookup(b, false); hit {
		t.Error("LRU way survived a third conflicting tag")
	}
	if _, hit := h.Lookup(a, false); !hit {
		t.Error("MRU way was evicted")
	}
}

func TestSlotsCapRestrictsHistory(t *testing.T) {
	p := New(Config{Lines: 1, L1Bytes: 2048, Slots: 2})
	sink := func(prefetch.Request) {}
	p.OnCall(fnB, fnA, sink)
	p.OnCall(fnC, fnA, sink)
	p.OnCall(fnD, fnA, sink) // beyond the 2-slot cap: dropped
	e, hit := p.finite.Lookup(fnA, false)
	if !hit {
		t.Fatal("entry missing")
	}
	if e.Callees[0] != fnB || e.Callees[1] != fnC {
		t.Errorf("slots = %v", e.Callees[:3])
	}
	if e.Callees[2] != 0 {
		t.Errorf("third callee recorded despite Slots=2: %#x", e.Callees[2])
	}
}

func TestConfigDescribeAblations(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Lines: 4, L1Bytes: 1024, Ways: 2}, "cgp_4/CGHC-1K-2way"},
		{Config{Lines: 4, L1Bytes: 2048, L2Bytes: 32768, Slots: 4}, "cgp_4/CGHC-2K+32K/slots4"},
	}
	for _, c := range cases {
		if got := c.cfg.Describe(); got != c.want {
			t.Errorf("Describe = %q, want %q", got, c.want)
		}
	}
}
