package core

import (
	"fmt"

	"cgp/internal/isa"
	"cgp/internal/prefetch"
)

// Config selects a CGHC organization for CGP (Figure 5's design space).
type Config struct {
	// Lines is N in CGP_N: how many cache lines of a predicted function
	// are prefetched per CGHC hit (§3.2; the paper evaluates 2 and 4).
	Lines int
	// L1Bytes is the first-level CGHC data-array size. Zero with
	// Infinite=false and L2Bytes=0 is invalid.
	L1Bytes int
	// L2Bytes, if nonzero, adds a second-level CGHC.
	L2Bytes int
	// Infinite selects the unbounded CGHC (every function keeps its
	// entire most-recent call sequence).
	Infinite bool
	// Ways selects CGHC set-associativity for the ablation study
	// (0 or 1 = direct-mapped, the paper's design).
	Ways int
	// Slots caps the callees recorded per entry for the ablation study
	// (0 = MaxCallees, the paper's 8).
	Slots int
}

// DefaultConfig is the configuration the paper settles on: CGP_4 with a
// 2KB+32KB two-level CGHC.
func DefaultConfig() Config {
	return Config{Lines: 4, L1Bytes: 2 * 1024, L2Bytes: 32 * 1024}
}

// Describe returns e.g. "cgp_4/CGHC-2K+32K".
func (c Config) Describe() string {
	d := fmt.Sprintf("cgp_%d/%s", c.Lines, c.describeHistory())
	if c.Slots > 0 && c.Slots != MaxCallees {
		d += fmt.Sprintf("/slots%d", c.Slots)
	}
	return d
}

func (c Config) describeHistory() string {
	way := ""
	if c.Ways > 1 {
		way = fmt.Sprintf("-%dway", c.Ways)
	}
	switch {
	case c.Infinite:
		return "CGHC-Inf"
	case c.L2Bytes > 0:
		return fmt.Sprintf("CGHC-%dK+%dK%s", c.L1Bytes/1024, c.L2Bytes/1024, way)
	default:
		return fmt.Sprintf("CGHC-%dK%s", c.L1Bytes/1024, way)
	}
}

// Stats aggregates CGP-level counters.
type Stats struct {
	History HistoryStats
	// CGHCPrefetches counts line prefetches issued by the CGHC portion.
	CGHCPrefetches int64
	// CallAccesses / ReturnAccesses count prefetch-access lookups.
	CallAccesses   int64
	ReturnAccesses int64
}

// CGP is the call-graph prefetcher (§3.2): a CGHC that predicts the next
// function to execute at every call and return, plus an internal
// next-N-line prefetcher for intra-function lines.
type CGP struct {
	cfg   Config
	slots int

	finite   History
	infinite *Infinite

	nl *prefetch.NL

	cghcPrefetches int64
	callAccesses   int64
	returnAccesses int64
}

var _ prefetch.Prefetcher = (*CGP)(nil)

// New builds a CGP prefetcher from cfg.
func New(cfg Config) *CGP {
	if cfg.Lines <= 0 {
		panic("core: CGP Lines must be positive")
	}
	slots := cfg.Slots
	if slots <= 0 || slots > MaxCallees {
		slots = MaxCallees
	}
	p := &CGP{cfg: cfg, slots: slots, nl: prefetch.NewNL(cfg.Lines)}
	ways := cfg.Ways
	if ways <= 0 {
		ways = 1
	}
	switch {
	case cfg.Infinite:
		p.infinite = NewInfinite()
	case cfg.L2Bytes > 0:
		p.finite = NewTwoLevelAssoc(cfg.L1Bytes, cfg.L2Bytes, ways)
	case cfg.L1Bytes > 0:
		p.finite = NewOneLevelAssoc(cfg.L1Bytes, ways)
	default:
		panic("core: CGP config selects no CGHC")
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *CGP) Name() string { return p.cfg.Describe() }

// Config returns the configuration.
func (p *CGP) Config() Config { return p.cfg }

// Stats returns a snapshot of the prefetcher's counters.
func (p *CGP) Stats() Stats {
	var hs HistoryStats
	if p.infinite != nil {
		hs = p.infinite.Stats()
	} else {
		hs = p.finite.Stats()
	}
	return Stats{
		History:        hs,
		CGHCPrefetches: p.cghcPrefetches,
		CallAccesses:   p.callAccesses,
		ReturnAccesses: p.returnAccesses,
	}
}

// OnFetch implements prefetch.Prefetcher: within a function body CGP
// relies on plain next-N-line prefetching (§3.2). Requests for lines the
// CGHC already covers are squashed downstream by the memory system.
func (p *CGP) OnFetch(line isa.Addr, issue prefetch.Issue) {
	p.nl.OnFetch(line, issue)
}

// OnCall implements prefetch.Prefetcher. Both CGHC accesses for a call
// instruction happen here: the prefetch access keyed by the predicted
// call target, then the update access keyed by the caller.
func (p *CGP) OnCall(target, callerStart isa.Addr, issue prefetch.Issue) {
	p.callAccesses++
	// First access (call prefetch): the index value of a function being
	// called should be 1, so on a tag hit the first callee in the data
	// entry is prefetched.
	if next, ok := p.callPrefetchLookup(target); ok {
		p.issueFunc(next, issue)
	}
	// Second access (call update): record target in the caller's entry
	// at its index, then advance the index.
	if callerStart != 0 {
		p.callUpdate(callerStart, target)
	}
}

// OnReturn implements prefetch.Prefetcher. predictedCallerStart comes
// from the modified RAS (the hardware cannot compute the caller's start
// address from the return target alone, §3.2); returningStart is the
// start address of the function executing the return.
func (p *CGP) OnReturn(predictedCallerStart, returningStart isa.Addr, issue prefetch.Issue) {
	p.returnAccesses++
	// First access (return prefetch): the caller's index selects the
	// next function it is predicted to call.
	if predictedCallerStart != 0 {
		if next, ok := p.returnPrefetchLookup(predictedCallerStart); ok {
			p.issueFunc(next, issue)
		}
	}
	// Second access (return update): the returning function's index is
	// reset to 1.
	if returningStart != 0 {
		p.returnUpdate(returningStart)
	}
}

// issueFunc prefetches the first cfg.Lines lines of the function at fn.
func (p *CGP) issueFunc(fn isa.Addr, issue prefetch.Issue) {
	base := isa.LineAddr(fn)
	for i := 0; i < p.cfg.Lines; i++ {
		p.cghcPrefetches++
		issue(prefetch.Request{
			Addr:    base + isa.Addr(i*isa.LineBytes),
			Portion: prefetch.PortionCGHC,
		})
	}
}

func (p *CGP) callPrefetchLookup(target isa.Addr) (isa.Addr, bool) {
	if p.infinite != nil {
		return p.infinite.callPrefetch(target)
	}
	e, hit := p.lookupFinite(target)
	p.countPrefetchAccessFinite(hit)
	if hit && e.Valid && e.Callees[0] != 0 {
		return e.Callees[0], true
	}
	return 0, false
}

func (p *CGP) callUpdate(caller, target isa.Addr) {
	if p.infinite != nil {
		p.infinite.callUpdate(caller, target)
		return
	}
	e, hit := p.lookupFinite(caller)
	p.countUpdateAccessFinite(hit)
	e.Valid = true
	if e.Index <= p.slots {
		e.Callees[e.Index-1] = target
		// The index saturates one past the last slot so that only the
		// first Slots calls of an invocation are recorded (§3.2).
		e.Index++
	}
}

func (p *CGP) returnPrefetchLookup(callerStart isa.Addr) (isa.Addr, bool) {
	if p.infinite != nil {
		return p.infinite.returnPrefetch(callerStart)
	}
	e, hit := p.lookupFinite(callerStart)
	p.countPrefetchAccessFinite(hit)
	if hit && e.Valid && e.Index <= p.slots && e.Callees[e.Index-1] != 0 {
		return e.Callees[e.Index-1], true
	}
	return 0, false
}

func (p *CGP) returnUpdate(returning isa.Addr) {
	if p.infinite != nil {
		p.infinite.returnUpdate(returning)
		return
	}
	e, hit := p.lookupFinite(returning)
	p.countUpdateAccessFinite(hit)
	e.Index = 1
}

func (p *CGP) lookupFinite(fn isa.Addr) (*Entry, bool) {
	return p.finite.Lookup(fn, true)
}

func (p *CGP) countPrefetchAccessFinite(hit bool) {
	switch h := p.finite.(type) {
	case *OneLevel:
		countPrefetch(hit, &h.stats)
	case *TwoLevel:
		countPrefetch(hit, &h.stats)
	}
}

func (p *CGP) countUpdateAccessFinite(hit bool) {
	switch h := p.finite.(type) {
	case *OneLevel:
		countUpdate(hit, &h.stats)
	case *TwoLevel:
		countUpdate(hit, &h.stats)
	}
}
