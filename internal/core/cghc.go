// Package core implements the paper's contribution: Call Graph
// Prefetching (CGP) and the Call Graph History Cache (CGHC) that backs
// it (§3).
//
// The CGHC is a direct-mapped cache indexed by function starting
// address (a set-associative variant is provided for the ablation
// study). Each entry stores an index (1..MaxCallees) and the sequence
// of functions the tagged function called the last time it executed.
// Every call and every return makes two CGHC accesses: a prefetch
// access keyed by the predicted target, and an update access keyed by
// the currently executing function (§3.2).
package core

import (
	"fmt"

	"cgp/internal/isa"
)

// MaxCallees is the number of callee slots per finite CGHC entry. The
// paper found 80% of functions call fewer than 8 distinct functions, so
// each data-array entry stores up to 8 starting addresses (one 32-byte
// line of 4-byte addresses).
const MaxCallees = 8

// Entry is one CGHC record: the call sequence observed during the
// tagged function's most recent (possibly still in-progress) execution.
type Entry struct {
	// Fn is the starting address of the function this entry describes
	// (the tag).
	Fn isa.Addr
	// Index is 1-based: it selects the slot the *next* call update will
	// write, and the slot a return-prefetch access reads. It is reset to
	// 1 when the function returns. Index 0 marks an empty way.
	Index int
	// Callees[i] is the (i+1)'th function called during the most recent
	// execution. A zero address marks an empty slot.
	Callees [MaxCallees]isa.Addr
	// Valid marks the data-array entry as holding real history. A newly
	// allocated entry has Valid=false until its first call update.
	Valid bool
}

// reset prepares an entry for a new tag.
func (e *Entry) reset(fn isa.Addr) {
	*e = Entry{Fn: fn, Index: 1}
}

// live reports whether the way holds a valid tag.
func (e *Entry) live() bool { return e.Index > 0 }

// HistoryStats counts CGHC traffic. Like every simulator counter it is
// deterministic-domain data: derived only from the replayed event
// stream, identical across re-runs, and safe to surface in report
// bodies and the metrics exposition.
type HistoryStats struct {
	PrefetchHits     int64
	PrefetchMisses   int64
	UpdateHits       int64
	UpdateMisses     int64
	LevelTwoHits     int64
	LevelTwoMisses   int64
	Swaps            int64
	Allocations      int64
	PrefetchesIssued int64
}

// PrefetchHitRate returns the fraction of prefetch-access lookups that
// found their tag (at any level).
func (h HistoryStats) PrefetchHitRate() float64 {
	total := h.PrefetchHits + h.PrefetchMisses
	if total == 0 {
		return 0
	}
	return float64(h.PrefetchHits) / float64(total)
}

// UpdateHitRate returns the fraction of update-access lookups that
// found their tag.
func (h HistoryStats) UpdateHitRate() float64 {
	total := h.UpdateHits + h.UpdateMisses
	if total == 0 {
		return 0
	}
	return float64(h.UpdateHits) / float64(total)
}

// History is the storage abstraction behind CGP: one-level, two-level or
// infinite CGHC (§5.3). Lookup returns the entry for a function start
// address, allocating on miss when alloc is true. The returned pointer
// is mutable in place.
type History interface {
	// Lookup finds (or allocates) the entry tagged fn. hit reports
	// whether the tag was already present at any level. It runs twice
	// per simulated call and return, so it is a hot interface method:
	// allocfree verifies every implementation ("allocating" above means
	// claiming a preallocated way, never heap allocation).
	//
	//cgplint:hotpath
	Lookup(fn isa.Addr, alloc bool) (e *Entry, hit bool)
	// Stats returns traffic counters.
	Stats() HistoryStats
	// Describe returns a human-readable configuration string.
	Describe() string
}

// level is one CGHC array: sets x ways entries with LRU replacement
// within a set. ways=1 (the paper's choice) degenerates to a
// direct-mapped array with no replacement state.
type level struct {
	entries []Entry
	stamps  []uint64
	ways    int
	mask    uint64
	tick    uint64
}

func newLevel(sizeBytes, ways int) *level {
	if ways <= 0 {
		ways = 1
	}
	n := sizeBytes / isa.LineBytes
	if n <= 0 || n%ways != 0 {
		panic(fmt.Sprintf("core: CGHC size %dB incompatible with %d ways", sizeBytes, ways))
	}
	sets := n / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("core: CGHC size %dB yields non-power-of-two set count %d", sizeBytes, sets))
	}
	return &level{
		entries: make([]Entry, n),
		stamps:  make([]uint64, n),
		ways:    ways,
		mask:    uint64(sets - 1),
	}
}

func (l *level) setBase(fn isa.Addr) int {
	// Function starts are line-aligned, so index above the line offset.
	return int((uint64(fn)>>isa.LineShift)&l.mask) * l.ways
}

// find returns the live entry tagged fn, refreshing its LRU stamp.
func (l *level) find(fn isa.Addr) *Entry {
	base := l.setBase(fn)
	for w := 0; w < l.ways; w++ {
		e := &l.entries[base+w]
		if e.live() && e.Fn == fn {
			l.tick++
			l.stamps[base+w] = l.tick
			return e
		}
	}
	return nil
}

// victim returns the way fn's set would replace (an empty way, else the
// LRU way) and refreshes its stamp; the caller overwrites it.
func (l *level) victim(fn isa.Addr) *Entry {
	base := l.setBase(fn)
	vi := base
	for w := 0; w < l.ways; w++ {
		i := base + w
		if !l.entries[i].live() {
			vi = i
			break
		}
		if l.stamps[i] < l.stamps[vi] {
			vi = i
		}
	}
	l.tick++
	l.stamps[vi] = l.tick
	return &l.entries[vi]
}

// install writes e into its set (replacing the victim).
func (l *level) install(e Entry) {
	*l.victim(e.Fn) = e
}

// invalidate clears the way holding fn, if any.
func (l *level) invalidate(fn isa.Addr) {
	if e := l.find(fn); e != nil {
		e.Index = 0
	}
}

// OneLevel is a single CGHC array (the CGHC-1K and CGHC-32K
// configurations of Figure 5; direct-mapped unless ways > 1).
type OneLevel struct {
	level *level
	size  int
	ways  int
	stats HistoryStats
}

// NewOneLevel builds a direct-mapped one-level CGHC of the given
// data-array size.
func NewOneLevel(sizeBytes int) *OneLevel { return NewOneLevelAssoc(sizeBytes, 1) }

// NewOneLevelAssoc builds a set-associative one-level CGHC (the
// ablation variant; the paper uses ways=1).
func NewOneLevelAssoc(sizeBytes, ways int) *OneLevel {
	return &OneLevel{level: newLevel(sizeBytes, ways), size: sizeBytes, ways: ways}
}

// Lookup implements History.
func (h *OneLevel) Lookup(fn isa.Addr, alloc bool) (*Entry, bool) {
	if e := h.level.find(fn); e != nil {
		return e, true
	}
	if !alloc {
		return nil, false
	}
	h.stats.Allocations++
	e := h.level.victim(fn)
	e.reset(fn)
	return e, false
}

// Stats implements History.
func (h *OneLevel) Stats() HistoryStats { return h.stats }

// Describe implements History.
func (h *OneLevel) Describe() string {
	if h.ways > 1 {
		return fmt.Sprintf("CGHC-%dK-%dway", h.size/1024, h.ways)
	}
	return fmt.Sprintf("CGHC-%dK", h.size/1024)
}

// TwoLevel is the two-level CGHC of §5.3: a small first level backed by
// a larger second level. On an L1 miss that hits in L2 the two entries
// are exchanged; on a full miss the new entry is allocated in L1 and the
// displaced L1 entry is written back to L2.
type TwoLevel struct {
	l1, l2 *level
	s1, s2 int
	ways   int
	stats  HistoryStats
}

// NewTwoLevel builds a direct-mapped two-level CGHC (sizes are
// data-array bytes; the paper's preferred configuration is 2KB+32KB).
func NewTwoLevel(l1Bytes, l2Bytes int) *TwoLevel { return NewTwoLevelAssoc(l1Bytes, l2Bytes, 1) }

// NewTwoLevelAssoc builds a set-associative two-level CGHC.
func NewTwoLevelAssoc(l1Bytes, l2Bytes, ways int) *TwoLevel {
	return &TwoLevel{
		l1: newLevel(l1Bytes, ways), l2: newLevel(l2Bytes, ways),
		s1: l1Bytes, s2: l2Bytes, ways: ways,
	}
}

// Lookup implements History.
func (h *TwoLevel) Lookup(fn isa.Addr, alloc bool) (*Entry, bool) {
	if e := h.l1.find(fn); e != nil {
		return e, true
	}
	if e2 := h.l2.find(fn); e2 != nil {
		h.stats.LevelTwoHits++
		h.stats.Swaps++
		// Exchange: the hit entry moves to L1; the displaced L1 entry
		// is written back to L2 (into the slot the hit entry vacates
		// when the sets coincide, else into its own set).
		hit := *e2
		e2.Index = 0
		v := h.l1.victim(fn)
		displaced := *v
		*v = hit
		if displaced.live() {
			h.l2.install(displaced)
		}
		return v, true
	}
	if !alloc {
		return nil, false
	}
	h.stats.LevelTwoMisses++
	h.stats.Allocations++
	v := h.l1.victim(fn)
	displaced := *v
	v.reset(fn)
	if displaced.live() {
		h.l2.install(displaced)
	}
	return v, false
}

// Stats implements History.
func (h *TwoLevel) Stats() HistoryStats { return h.stats }

// Describe implements History.
func (h *TwoLevel) Describe() string {
	s := fmt.Sprintf("CGHC-%dK+%dK", h.s1/1024, h.s2/1024)
	if h.ways > 1 {
		s += fmt.Sprintf("-%dway", h.ways)
	}
	return s
}

// Infinite is the unbounded CGHC of Figure 5: every function has an
// entry, and the entry records the entire call sequence of the most
// recent invocation (not just the first 8 calls).
type Infinite struct {
	entries map[isa.Addr]*InfEntry
	stats   HistoryStats
}

// InfEntry is the unbounded analogue of Entry.
type InfEntry struct {
	Fn      isa.Addr
	Index   int
	Callees []isa.Addr
}

// NewInfinite builds an infinite CGHC.
func NewInfinite() *Infinite {
	return &Infinite{entries: make(map[isa.Addr]*InfEntry)}
}

// LookupInf finds or allocates the unbounded entry for fn.
func (h *Infinite) LookupInf(fn isa.Addr, alloc bool) (*InfEntry, bool) {
	if e, ok := h.entries[fn]; ok {
		return e, true
	}
	if !alloc {
		return nil, false
	}
	h.stats.Allocations++
	e := &InfEntry{Fn: fn, Index: 1}
	h.entries[fn] = e
	return e, false
}

// Lookup implements History; it is unused for Infinite (CGP special-
// cases the unbounded entry type) but satisfies the interface so the
// configuration plumbing stays uniform.
func (h *Infinite) Lookup(fn isa.Addr, alloc bool) (*Entry, bool) {
	panic("core: Infinite.Lookup: use LookupInf")
}

// The four methods below are the unbounded CGHC's halves of CGP's
// call/return accesses (see the matching finite paths in cgp.go). They
// are deliberately coldpath: the infinite model exists to measure the
// limit of call-graph history (Figure 5), not to be
// hardware-implementable, and it allocates per newly seen function and
// per callee-sequence growth by design.

// callPrefetch is the call-instruction prefetch access: a tag hit
// predicts the entry's first callee.
//
//cgplint:coldpath the unbounded CGHC is an idealized limit study that allocates per newly seen function by design
func (h *Infinite) callPrefetch(target isa.Addr) (isa.Addr, bool) {
	e, hit := h.LookupInf(target, true)
	countPrefetch(hit, &h.stats)
	if hit && len(e.Callees) > 0 && e.Callees[0] != 0 {
		return e.Callees[0], true
	}
	return 0, false
}

// callUpdate is the call-instruction update access: record target at
// the caller's index, growing the unbounded sequence as needed.
//
//cgplint:coldpath the unbounded CGHC is an idealized limit study that grows its callee sequences by design
func (h *Infinite) callUpdate(caller, target isa.Addr) {
	e, hit := h.LookupInf(caller, true)
	countUpdate(hit, &h.stats)
	idx := e.Index // 1-based write position; unbounded history
	for len(e.Callees) < idx {
		e.Callees = append(e.Callees, 0)
	}
	e.Callees[idx-1] = target
	e.Index = idx + 1
}

// returnPrefetch is the return-instruction prefetch access: the
// caller's index selects the next function it is predicted to call.
//
//cgplint:coldpath the unbounded CGHC is an idealized limit study that allocates per newly seen function by design
func (h *Infinite) returnPrefetch(callerStart isa.Addr) (isa.Addr, bool) {
	e, hit := h.LookupInf(callerStart, true)
	countPrefetch(hit, &h.stats)
	if hit && e.Index >= 1 && e.Index <= len(e.Callees) && e.Callees[e.Index-1] != 0 {
		return e.Callees[e.Index-1], true
	}
	return 0, false
}

// returnUpdate is the return-instruction update access: the returning
// function's index resets to 1.
//
//cgplint:coldpath the unbounded CGHC is an idealized limit study that allocates per newly seen function by design
func (h *Infinite) returnUpdate(returning isa.Addr) {
	e, hit := h.LookupInf(returning, true)
	countUpdate(hit, &h.stats)
	e.Index = 1
}

// countPrefetch books one prefetch-access lookup outcome.
func countPrefetch(hit bool, s *HistoryStats) {
	if hit {
		s.PrefetchHits++
	} else {
		s.PrefetchMisses++
	}
}

// countUpdate books one update-access lookup outcome.
func countUpdate(hit bool, s *HistoryStats) {
	if hit {
		s.UpdateHits++
	} else {
		s.UpdateMisses++
	}
}

// Stats implements History.
func (h *Infinite) Stats() HistoryStats { return h.stats }

// Describe implements History.
func (h *Infinite) Describe() string { return "CGHC-Inf" }

// Size returns the number of live entries.
func (h *Infinite) Size() int { return len(h.entries) }
