package cpu

import (
	"cgp/internal/cache"
	"cgp/internal/prefetch"
	"cgp/internal/units"
)

// PrefetchStats breaks prefetch traffic down the way Figures 8 and 9 do,
// per issuing portion (NL vs CGHC).
type PrefetchStats struct {
	// Issued counts prefetches that actually went to the L2 FIFO.
	Issued int64
	// Squashed counts requests dropped because the line was resident or
	// already in flight.
	Squashed int64
	// PrefHits counts lines whose first demand touch found them fully
	// resident in L1I.
	PrefHits int64
	// DelayedHits counts lines whose first demand touch found them
	// still enroute from L2/memory.
	DelayedHits int64
	// Useless counts prefetched lines evicted without ever being used.
	Useless int64
}

// Useful returns PrefHits + DelayedHits.
func (p PrefetchStats) Useful() int64 { return p.PrefHits + p.DelayedHits }

// UsefulFraction returns Useful / Issued.
func (p PrefetchStats) UsefulFraction() float64 {
	if p.Issued == 0 {
		return 0
	}
	return float64(p.Useful()) / float64(p.Issued)
}

// add accumulates o into p.
func (p *PrefetchStats) add(o PrefetchStats) {
	p.Issued += o.Issued
	p.Squashed += o.Squashed
	p.PrefHits += o.PrefHits
	p.DelayedHits += o.DelayedHits
	p.Useless += o.Useless
}

// Stats is everything one simulation run measures.
type Stats struct {
	// Cycles is total execution time.
	Cycles units.Cycles
	// Instructions is the dynamic instruction count.
	Instructions units.Instrs

	// ICacheMisses counts demand fetches that had to go to L2 (delayed
	// hits on in-flight prefetches are counted as DelayedHits instead).
	ICacheMisses int64
	// ILineAccesses counts demand line fetches.
	ILineAccesses int64
	// IMissStallCycles is the total stall attributable to I-misses.
	IMissStallCycles units.Cycles

	// DCacheMisses / DLineAccesses mirror the above for data.
	DCacheMisses  int64
	DLineAccesses int64

	// L2Accesses counts all line transfers on the L1<->L2 interface
	// (demand I, demand D, prefetch) — the bus-traffic measure of §5.6.
	L2Accesses int64
	// L2Misses counts transfers that also went to memory.
	L2Misses int64

	// Branches / BranchMispredicts cover conditional branches.
	Branches          int64
	BranchMispredicts int64
	// Returns / RASMispredicts cover return-address prediction.
	Returns        int64
	RASMispredicts int64
	// Calls counts call events.
	Calls int64
	// Switches counts context switches.
	Switches int64

	// NL and CGHC split prefetch traffic by issuing portion; Total is
	// their sum.
	NL   PrefetchStats
	CGHC PrefetchStats

	// L1IStats/L1DStats/L2Stats are the raw cache counters.
	L1IStats cache.Stats
	L1DStats cache.Stats
	L2Stats  cache.Stats

	// Attribution is the per-function prefetch breakdown, sorted by
	// function start address. It is nil unless the CPU ran with
	// EnableAttribution; collecting it changes no other counter.
	Attribution []FuncAttribution

	// QueryAttr is the per-query prefetch breakdown of a tagged live
	// capture, sorted by trace ID. It is nil unless the CPU ran with
	// EnableAttribution over a stream carrying KindQueryTag events, so
	// every pre-existing run shape serializes exactly as before.
	QueryAttr []QueryAttribution `json:",omitempty"`

	// Sample carries the whole-run estimates of a sampled run, nil for
	// full-detail runs. When non-nil, Cycles covers only the detailed
	// spans; the run-level cycle figure is Sample.EstCycles (±CI).
	// Instructions remains the exact whole-run count in either mode.
	Sample *SampleStats
}

// SampleStats is the estimator output of a sampled run, plus the
// span-tier event accounting that makes a sampled replay inspectable.
type SampleStats struct {
	// EstCycles is the estimated whole-run cycle count: the
	// instruction-weighted window CPI scaled by the exact whole-run
	// instruction count. It is typed units.EstCycles — distinct from
	// measured units.Cycles — so it cannot silently flow into measured
	// accounting (enforced by the cyclesafe analyzer).
	EstCycles units.EstCycles
	// CycleRelCI is the relative half-width of the 95% confidence
	// interval on EstCycles (paired-window variance).
	CycleRelCI float64
	// EstIMisses / MissRelCI are the same estimate for I-cache misses.
	EstIMisses int64
	MissRelCI  float64
	// Windows is how many measurement windows closed; Degenerate marks
	// estimates from fewer than two windows, whose RelCI of zero is
	// absence of a CI, not a claim of zero error.
	Windows    int
	Degenerate bool

	// Event accounting by replay tier.
	SkippedEvents       int64
	SkippedInstrs       units.Instrs
	FastForwardedEvents int64
	WarmupEvents        int64
	MeasuredEvents      int64
}

// DetailedEvents returns the events simulated in full detail (warm-up
// plus measured).
func (s *SampleStats) DetailedEvents() int64 {
	return s.WarmupEvents + s.MeasuredEvents
}

// EstIPC returns instructions per estimated cycle.
func (s *SampleStats) EstIPC(instrs units.Instrs) float64 {
	if s.EstCycles == 0 {
		return 0
	}
	return float64(instrs) / float64(s.EstCycles)
}

// TotalPrefetch returns the combined prefetch stats.
func (s *Stats) TotalPrefetch() PrefetchStats {
	t := s.NL
	t.add(s.CGHC)
	return t
}

// PortionStats returns the prefetch split for one issuing portion, so
// per-portion consumers (metrics exposition, Figure 9) can iterate
// prefetch.Portions() instead of naming the fields.
func (s *Stats) PortionStats(p prefetch.Portion) PrefetchStats {
	if p == prefetch.PortionCGHC {
		return s.CGHC
	}
	return s.NL
}

// IPC returns instructions per cycle.
func (s *Stats) IPC() float64 {
	return units.IPC(s.Instructions, s.Cycles)
}

// IMissRate returns I-cache misses per demand line access.
func (s *Stats) IMissRate() float64 {
	if s.ILineAccesses == 0 {
		return 0
	}
	return float64(s.ICacheMisses) / float64(s.ILineAccesses)
}

// IMissPerKInstr returns I-cache misses per 1000 instructions.
func (s *Stats) IMissPerKInstr() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return 1000 * float64(s.ICacheMisses) / float64(s.Instructions)
}
