package cpu_test

// Per-query attribution: counters keyed by the KindQueryTag trace IDs
// a live capture carries. The properties pinned here mirror the
// per-function suite — query rows never exceed the aggregates, tags
// never perturb the simulation, and the rows are deterministic and
// trace-ID-sorted.

import (
	"reflect"
	"testing"

	"cgp/internal/cpu"
	"cgp/internal/isa"
	"cgp/internal/trace"
)

// tagEvents splits the seeded stream into per-query segments: every
// segLen events, a context switch followed by a query tag, exactly the
// shape a tagged live capture replays into the CPU. The base stream's
// own context switches also get a tag re-stamped after them — in a
// fully tagged capture every switch opens a tagged batch, and an
// unpaired switch would (correctly) clear the query scope.
func tagEvents(seed int64, n, segLen int, firstID uint64) []trace.Event {
	base := genEvents(seed, n)
	out := make([]trace.Event, 0, len(base)+2*(len(base)/segLen+1))
	id := firstID - 1
	for i, ev := range base {
		if i%segLen == 0 {
			id++
			out = append(out,
				trace.Event{Kind: trace.KindSwitch, N: int32(i / segLen % 3)},
				trace.Event{Kind: trace.KindQueryTag, Addr: isa.Addr(id)})
		}
		out = append(out, ev)
		if ev.Kind == trace.KindSwitch {
			out = append(out, trace.Event{Kind: trace.KindQueryTag, Addr: isa.Addr(id)})
		}
	}
	return out
}

// stripTags removes only the KindQueryTag events, keeping the
// switches, so a tagged and an untagged run see the same simulated
// schedule.
func stripTags(evs []trace.Event) []trace.Event {
	out := make([]trace.Event, 0, len(evs))
	for _, ev := range evs {
		if ev.Kind != trace.KindQueryTag {
			out = append(out, ev)
		}
	}
	return out
}

func TestQueryAttributionInvariants(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			evs := tagEvents(3, 20000, 2500, 0x500)
			c := cpu.New(v.cfg(), v.pf())
			c.EnableAttribution()
			c.EventBatch(evs)
			s := c.Finish()

			if len(s.QueryAttr) == 0 {
				t.Fatal("tagged stream attributed no queries")
			}
			total := s.TotalPrefetch()
			var fetches, misses, prefHits, delayed, issued, useful int64
			for i := range s.QueryAttr {
				row := &s.QueryAttr[i]
				if i > 0 && row.Query <= s.QueryAttr[i-1].Query {
					t.Fatalf("query rows not strictly sorted at %d", i)
				}
				if row.Query < 0x500 {
					t.Fatalf("unexpected query ID %#x", row.Query)
				}
				if row.Useful > row.Issued {
					t.Fatalf("query %#x: useful %d > issued %d", row.Query, row.Useful, row.Issued)
				}
				fetches += row.LineFetches
				misses += row.Misses
				prefHits += row.PrefHits
				delayed += row.DelayedHits
				issued += row.Issued
				useful += row.Useful
			}
			// Every event in this stream runs under some query tag, so the
			// demand-side rows account for the whole run.
			if fetches != s.ILineAccesses {
				t.Fatalf("query fetches %d != ILineAccesses %d", fetches, s.ILineAccesses)
			}
			if misses != s.ICacheMisses {
				t.Fatalf("query misses %d != ICacheMisses %d", misses, s.ICacheMisses)
			}
			if prefHits != total.PrefHits || delayed != total.DelayedHits {
				t.Fatalf("query prefhits/delayed %d/%d != aggregate %d/%d",
					prefHits, delayed, total.PrefHits, total.DelayedHits)
			}
			if issued != total.Issued {
				t.Fatalf("query issued %d != aggregate %d", issued, total.Issued)
			}
			if useful != prefHits+delayed {
				t.Fatalf("issue-side useful %d != demand-side %d", useful, prefHits+delayed)
			}
		})
	}
}

// TestQueryTagsDoNotPerturbSimulation: adding query tags to a stream
// changes Stats only by the QueryAttr field — cycles, misses and
// per-function attribution stay byte-identical.
func TestQueryTagsDoNotPerturbSimulation(t *testing.T) {
	v := variants()[4] // cgp4
	tagged := tagEvents(7, 20000, 2500, 0x900)
	plain := stripTags(tagged)

	run := func(evs []trace.Event) *cpu.Stats {
		c := cpu.New(v.cfg(), v.pf())
		c.EnableAttribution()
		c.EventBatch(evs)
		return c.Finish()
	}
	st, sp := run(tagged), run(plain)
	if len(st.QueryAttr) == 0 {
		t.Fatal("tagged run has no query rows")
	}
	if sp.QueryAttr != nil {
		t.Fatal("untagged run grew query rows")
	}
	st.QueryAttr = nil
	if !reflect.DeepEqual(st, sp) {
		t.Fatalf("query tags perturbed the simulation\ntagged: %+v\nplain: %+v", st, sp)
	}
}

// TestQueryAttributionDeterministic: same tagged stream, same rows.
func TestQueryAttributionDeterministic(t *testing.T) {
	v := variants()[4]
	run := func() *cpu.Stats {
		c := cpu.New(v.cfg(), v.pf())
		c.EnableAttribution()
		c.EventBatch(tagEvents(11, 20000, 2000, 0x42))
		return c.Finish()
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("query attribution differs between identical runs")
	}
}

// TestQueryTagsIgnoredWithoutAttribution: with attribution off, tags
// flow through the event loop as no-ops.
func TestQueryTagsIgnoredWithoutAttribution(t *testing.T) {
	v := variants()[1] // nl4
	c := cpu.New(v.cfg(), v.pf())
	c.EventBatch(tagEvents(5, 10000, 2000, 0x42))
	s := c.Finish()
	if s.QueryAttr != nil {
		t.Fatal("attribution-off run produced query rows")
	}
	if s.Instructions == 0 {
		t.Fatal("tagged stream simulated no instructions")
	}
}
