package cpu_test

// Property tests for the per-function attribution layer: across every
// kernel variant and several seeds, the attribution rows must sum
// exactly to the aggregate counters the differential suite already
// pins, attribution must not perturb any aggregate, and the collection
// must stay allocation-free once warmed.

import (
	"reflect"
	"testing"

	"cgp/internal/cpu"
	"cgp/internal/prefetch"
)

// runWithAttribution consumes the seeded stream with attribution on.
func runWithAttribution(v kernelVariant, seed int64, n int) *cpu.Stats {
	c := cpu.New(v.cfg(), v.pf())
	c.EnableAttribution()
	c.EventBatch(genEvents(seed, n))
	return c.Finish()
}

func TestAttributionInvariants(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				s := runWithAttribution(v, seed, 20000)

				var fetches, misses, prefHits, delayed int64
				var issued, squashed, useful, useless int64
				var timelinessObs int64
				for i := range s.Attribution {
					row := &s.Attribution[i]
					fetches += row.LineFetches
					misses += row.Misses
					prefHits += row.PrefHits
					delayed += row.DelayedHits
					issued += row.Issued
					squashed += row.Squashed
					useful += row.Useful
					useless += row.Useless
					for _, b := range row.Timeliness {
						timelinessObs += b
					}
					// Per-row: a prefetch settles (useful or useless) at
					// most once, and only after being issued.
					if row.Useful+row.Useless > row.Issued {
						t.Fatalf("seed %d fn %#x: useful %d + useless %d > issued %d",
							seed, row.Func, row.Useful, row.Useless, row.Issued)
					}
					// Per-row: the timeliness histogram covers exactly the
					// useful demand touches.
					var rowObs int64
					for _, b := range row.Timeliness {
						rowObs += b
					}
					if rowObs != row.PrefHits+row.DelayedHits {
						t.Fatalf("seed %d fn %#x: %d timeliness observations, want prefhits %d + delayed %d",
							seed, row.Func, rowObs, row.PrefHits, row.DelayedHits)
					}
				}

				total := s.TotalPrefetch()
				// Demand-side rows sum to the aggregate fetch accounting.
				if fetches != s.ILineAccesses {
					t.Fatalf("seed %d: attribution fetches %d != ILineAccesses %d", seed, fetches, s.ILineAccesses)
				}
				if misses != s.ICacheMisses {
					t.Fatalf("seed %d: attribution misses %d != ICacheMisses %d", seed, misses, s.ICacheMisses)
				}
				if prefHits != total.PrefHits {
					t.Fatalf("seed %d: attribution prefhits %d != %d", seed, prefHits, total.PrefHits)
				}
				if delayed != total.DelayedHits {
					t.Fatalf("seed %d: attribution delayed hits %d != %d", seed, delayed, total.DelayedHits)
				}
				// Issue-side rows sum to the aggregate issue accounting.
				if issued != total.Issued {
					t.Fatalf("seed %d: attribution issued %d != %d", seed, issued, total.Issued)
				}
				if squashed != total.Squashed {
					t.Fatalf("seed %d: attribution squashed %d != %d", seed, squashed, total.Squashed)
				}
				if useless != total.Useless {
					t.Fatalf("seed %d: attribution useless %d != %d", seed, useless, total.Useless)
				}
				// Both sides agree on usefulness: every useful issue is a
				// prefetched demand touch and vice versa.
				if useful != prefHits+delayed {
					t.Fatalf("seed %d: issue-side useful %d != demand-side prefhits %d + delayed %d",
						seed, useful, prefHits, delayed)
				}
				if issued < useful {
					t.Fatalf("seed %d: issued %d < useful %d", seed, issued, useful)
				}
				// Fetch accounting closes: every demand line access either
				// hits, hits a prefetched line, waits on one, or misses.
				if s.L1IStats.Accesses != s.ILineAccesses {
					t.Fatalf("seed %d: L1I accesses %d != ILineAccesses %d", seed, s.L1IStats.Accesses, s.ILineAccesses)
				}
				if s.L1IStats.Misses != s.ICacheMisses+total.DelayedHits {
					t.Fatalf("seed %d: L1I misses %d != full misses %d + delayed hits %d",
						seed, s.L1IStats.Misses, s.ICacheMisses, total.DelayedHits)
				}
				if timelinessObs != prefHits+delayed {
					t.Fatalf("seed %d: %d total timeliness observations, want %d", seed, timelinessObs, prefHits+delayed)
				}
			}
		})
	}
}

// TestAttributionDoesNotPerturbAggregates pins the enablement
// contract: an attribution-enabled run differs from a plain run only
// by the Attribution field.
func TestAttributionDoesNotPerturbAggregates(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				plain := cpu.New(v.cfg(), v.pf())
				plain.EventBatch(genEvents(seed, 20000))
				sp := plain.Finish()

				sa := runWithAttribution(v, seed, 20000)
				if sa.Attribution == nil {
					t.Fatalf("seed %d: attribution enabled but Stats.Attribution nil", seed)
				}
				sa.Attribution = nil
				if !reflect.DeepEqual(sp, sa) {
					t.Fatalf("seed %d: attribution changed aggregate stats\nplain: %+v\nattributed: %+v", seed, sp, sa)
				}
			}
		})
	}
}

// TestAttributionDeterministic: same stream, same rows, byte for byte.
func TestAttributionDeterministic(t *testing.T) {
	v := variants()[4] // cgp4
	a := runWithAttribution(v, 2, 20000)
	b := runWithAttribution(v, 2, 20000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("attribution differs between identical runs")
	}
	if len(a.Attribution) == 0 {
		t.Fatal("cgp4 run attributed no functions")
	}
	var useful int64
	for i := range a.Attribution {
		if i > 0 && a.Attribution[i].Func <= a.Attribution[i-1].Func {
			t.Fatalf("attribution rows not strictly sorted at %d", i)
		}
		useful += a.Attribution[i].Useful
	}
	if useful == 0 {
		t.Fatal("cgp4 run produced no useful prefetches to attribute")
	}
}

// TestEventLoopDoesNotAllocateWithAttribution extends the zero-alloc
// gate to the attributed configuration: once every function has a row
// and the ring is at steady-state size, attribution must be free of
// allocations too.
func TestEventLoopDoesNotAllocateWithAttribution(t *testing.T) {
	evs := genEvents(5, 20000)
	c := cpu.New(cpu.DefaultConfig(), prefetch.NewNL(4))
	c.EnableAttribution()
	c.EventBatch(evs) // warm: caches, ring, and all attribution rows
	allocs := testing.AllocsPerRun(10, func() {
		c.EventBatch(evs[:2000])
	})
	if allocs != 0 {
		t.Errorf("attributed event loop allocates %.1f times per 2000-event batch, want 0", allocs)
	}
}
