// Package cpu is the trace-driven timing simulator: a 4-wide front end
// with the Table-1 memory hierarchy (32KB 2-way split L1, 1MB 4-way
// unified L2, 1/16/80-cycle latencies), a two-level branch predictor,
// the CGP-modified return address stack, and a prefetch engine whose
// traffic shares a single FIFO to L2 with demand misses (§3.3).
//
// It consumes trace.Event streams and accounts cycles; it stands in for
// the SimpleScalar simulator of §4.1.
package cpu

import (
	"cgp/internal/cache"
	"cgp/internal/isa"
	"cgp/internal/units"
)

// Config carries every microarchitectural parameter. DefaultConfig
// reproduces Table 1.
type Config struct {
	// FetchWidth is the number of instructions fetched, decoded and
	// issued per cycle.
	FetchWidth int

	L1I cache.Config
	L1D cache.Config
	L2  cache.Config

	// L1Latency is the L1 hit latency.
	L1Latency units.Cycles
	// L2Latency is the L2 hit latency.
	L2Latency units.Cycles
	// MemLatency is the DRAM access latency (beyond L2).
	MemLatency units.Cycles

	// BranchEntries sizes the two-level predictor's pattern table.
	BranchEntries int
	// RASDepth is the return-address-stack depth.
	RASDepth int
	// MispredictPenalty is charged per branch or return mispredict.
	MispredictPenalty units.Cycles
	// TakenBranchBubble is the fetch-redirect cost of every taken
	// control transfer (taken branch, call, return).
	TakenBranchBubble units.Cycles

	// BusCyclesPerLine is how long one line transfer occupies the
	// L1<->L2 interface; demand misses and prefetches queue behind each
	// other FIFO with no priority (§3.3).
	BusCyclesPerLine units.Cycles

	// DataStallFactor is the fraction of a data-miss latency that
	// actually stalls the core: the out-of-order window hides the rest.
	DataStallFactor float64

	// SwitchPenalty is charged per context switch between query threads.
	SwitchPenalty units.Cycles

	// PerfectICache makes every instruction access complete in one
	// cycle (the perf-Icache bars of Figures 6 and 10).
	PerfectICache bool

	// DemandPriority lets demand misses bypass queued prefetches on the
	// L1<->L2 interface. The paper's design deliberately does NOT do
	// this (§3.3); the flag exists for the ablation study.
	DemandPriority bool

	// PrefetchIntoL2Only makes prefetches fill only the L2, not L1I, so
	// a later demand fetch still pays the L2 hit latency. The paper
	// prefetches directly into L1I (§3.3); the flag exists for the
	// ablation study.
	PrefetchIntoL2Only bool

	// FlushRASOnSwitch empties the RAS at context switches.
	FlushRASOnSwitch bool
}

// DefaultConfig returns the Table-1 machine.
func DefaultConfig() Config {
	return Config{
		FetchWidth:        4,
		L1I:               cache.Config{Name: "L1I", SizeBytes: 32 * 1024, Assoc: 2, LineBytes: isa.LineBytes},
		L1D:               cache.Config{Name: "L1D", SizeBytes: 32 * 1024, Assoc: 2, LineBytes: isa.LineBytes},
		L2:                cache.Config{Name: "L2", SizeBytes: 1024 * 1024, Assoc: 4, LineBytes: isa.LineBytes},
		L1Latency:         1,
		L2Latency:         16,
		MemLatency:        80,
		BranchEntries:     2048,
		RASDepth:          32,
		MispredictPenalty: 7,
		TakenBranchBubble: 0,
		BusCyclesPerLine:  2,
		DataStallFactor:   0.15,
		SwitchPenalty:     24,
		FlushRASOnSwitch:  true,
	}
}
