package cpu

import (
	"math/bits"
	"sort"

	"cgp/internal/isa"
	"cgp/internal/units"
)

// attrBuckets is the number of power-of-two timeliness buckets each
// function keeps: bucket i counts issue-to-use distances d with
// bits.Len64(d) == i (bucket 0 holds zero-distance uses), and the last
// bucket absorbs everything from 2^(attrBuckets-2) cycles up.
const attrBuckets = 24

// FuncAttribution is one function's share of the prefetch accounting:
// what the instruction stream demanded while the function was
// executing, and how the prefetches launched on its behalf fared. It
// is part of Stats, so it is deterministic and replay-stable like
// every other counter.
//
// The two sides attribute differently, by design:
//
//   - Demand-side counters (LineFetches, Misses, PrefHits,
//     DelayedHits, Timeliness) belong to the function that was
//     executing when the fetch happened — they answer "how well is
//     this function's code covered?".
//   - Issue-side counters (Issued, Squashed, Useful, Useless) belong
//     to the function whose entry or execution triggered the prefetch
//     — for CGP's call/return prefetches that is the function being
//     entered, so they answer "does prefetching on behalf of this
//     function pay off?".
type FuncAttribution struct {
	// Func is the function's start address (0 collects fetches seen
	// before the first call event identifies a function).
	Func isa.Addr

	// LineFetches counts demand instruction line fetches executed
	// inside the function; Misses is the subset that went to L2 with
	// no prefetch in sight.
	LineFetches int64
	Misses      int64
	// PrefHits / DelayedHits are first touches of prefetched lines
	// while the function was executing: fully resident vs still
	// enroute (the paper's Figure 8 split, per function).
	PrefHits    int64
	DelayedHits int64

	// Issued / Squashed count prefetch requests triggered on the
	// function's behalf; Useful / Useless settle how those issues
	// ended (first-touched vs evicted untouched).
	Issued   int64
	Squashed int64
	Useful   int64
	Useless  int64

	// TimelinessSum is the total issue-to-first-use distance of the
	// function's useful prefetches; Timeliness is the power-of-two
	// histogram of those distances. A distance below the L2 latency
	// means the prefetch was late (a delayed hit).
	TimelinessSum units.Cycles
	Timeliness    [attrBuckets]int64
}

// observeTimeliness records one issue-to-use distance.
func (f *FuncAttribution) observeTimeliness(d units.Cycles) {
	if d < 0 {
		d = 0
	}
	f.TimelinessSum += d
	b := bits.Len64(uint64(d))
	if b >= attrBuckets {
		b = attrBuckets - 1
	}
	f.Timeliness[b]++
}

// Coverage returns the fraction of would-be misses the prefetcher
// served (fully or late) for this function's code.
func (f *FuncAttribution) Coverage() float64 {
	demand := f.Misses + f.PrefHits + f.DelayedHits
	if demand == 0 {
		return 0
	}
	return float64(f.PrefHits+f.DelayedHits) / float64(demand)
}

// Accuracy returns Useful / Issued for prefetches launched on the
// function's behalf.
func (f *FuncAttribution) Accuracy() float64 {
	if f.Issued == 0 {
		return 0
	}
	return float64(f.Useful) / float64(f.Issued)
}

// MeanTimeliness returns the mean issue-to-first-use distance of the
// function's useful demand touches, in cycles.
func (f *FuncAttribution) MeanTimeliness() float64 {
	used := f.PrefHits + f.DelayedHits
	if used == 0 {
		return 0
	}
	return float64(f.TimelinessSum) / float64(used)
}

// QueryAttribution is one traced query's share of the prefetch
// accounting, keyed by the wire-carried trace ID of the KindQueryTag
// event that opened its probe batch. The counters split exactly like
// FuncAttribution's: demand-side counters belong to the query whose
// statements were executing when the fetch happened, issue-side
// counters to the query on whose behalf the prefetch was launched.
// Rows exist only for tagged queries — replaying an untagged capture
// (or any synthetic workload) produces none, so Stats serialization is
// unchanged for every pre-existing run shape.
type QueryAttribution struct {
	// Query is the trace ID from the tagging client (never zero; the
	// replayer rejects zero tags).
	Query uint64

	// Demand side: line fetches executed inside the query's statements.
	LineFetches int64
	Misses      int64
	PrefHits    int64
	DelayedHits int64

	// Issue side: prefetches triggered while the query was executing.
	Issued   int64
	Squashed int64
	Useful   int64
	Useless  int64

	// TimelinessSum totals the issue-to-first-use distance of the
	// query's useful prefetches (no per-query bucket array — the
	// per-function table already carries the distribution).
	TimelinessSum units.Cycles
}

// observeTimeliness records one issue-to-use distance.
func (q *QueryAttribution) observeTimeliness(d units.Cycles) {
	if d < 0 {
		d = 0
	}
	q.TimelinessSum += d
}

// Coverage returns the fraction of would-be misses the prefetcher
// served (fully or late) for this query's code.
func (q *QueryAttribution) Coverage() float64 {
	demand := q.Misses + q.PrefHits + q.DelayedHits
	if demand == 0 {
		return 0
	}
	return float64(q.PrefHits+q.DelayedHits) / float64(demand)
}

// Accuracy returns Useful / Issued for prefetches launched on the
// query's behalf.
func (q *QueryAttribution) Accuracy() float64 {
	if q.Issued == 0 {
		return 0
	}
	return float64(q.Useful) / float64(q.Issued)
}

// MeanTimeliness returns the mean issue-to-first-use distance of the
// query's useful demand touches, in cycles.
func (q *QueryAttribution) MeanTimeliness() float64 {
	used := q.PrefHits + q.DelayedHits
	if used == 0 {
		return 0
	}
	return float64(q.TimelinessSum) / float64(used)
}

// attribution is the per-function collector. It is nil on a CPU
// unless EnableAttribution was called; every hot-path hook is guarded
// by that nil check. Rows are appended on first sight of a function
// and reused forever after, so a warmed CPU attributes without
// allocating — the same steady-state contract the inflight ring keeps.
//
// When the stream carries KindQueryTag events (a tagged live capture),
// the collector additionally scopes the same counters by query: curQ
// indexes the executing query's row, or -1 between a context switch
// and the next tag — a switch to an untagged batch must not smear its
// fetches onto the previously tagged query.
type attribution struct {
	index  map[isa.Addr]int32
	rows   []FuncAttribution
	curIdx int32

	qindex map[uint64]int32
	qrows  []QueryAttribution
	curQ   int32
}

func newAttribution() *attribution {
	a := &attribution{
		index:  make(map[isa.Addr]int32, 64),
		qindex: make(map[uint64]int32, 16),
		curQ:   -1,
	}
	a.curIdx = a.rowFor(0)
	return a
}

// rowFor returns the row index for the function starting at fn,
// creating the row on first sight. The lookup is the hot half; the
// first-sight miss falls through to addRow.
func (a *attribution) rowFor(fn isa.Addr) int32 {
	if i, ok := a.index[fn]; ok {
		return i
	}
	return a.addRow(fn)
}

// addRow appends a fresh row for fn. It runs once per distinct
// function in the trace, so a warmed table only takes rowFor's
// read-only fast path.
//
//cgplint:coldpath rows are created on first sight of a function; the steady-state loop only reads the index
func (a *attribution) addRow(fn isa.Addr) int32 {
	i := int32(len(a.rows))
	a.rows = append(a.rows, FuncAttribution{Func: fn})
	a.index[fn] = i
	return i
}

// enter switches the executing function (on call and return events).
func (a *attribution) enter(fn isa.Addr) {
	a.curIdx = a.rowFor(fn)
}

// cur returns the executing function's row. The pointer is valid only
// until the next enter — rows may move when the slice grows.
func (a *attribution) cur() *FuncAttribution { return &a.rows[a.curIdx] }

// at returns the row at a previously captured index.
func (a *attribution) at(i int32) *FuncAttribution { return &a.rows[i] }

// sorted returns a copy of the rows ordered by function start address,
// the deterministic order Stats exposes.
func (a *attribution) sorted() []FuncAttribution {
	rows := append([]FuncAttribution(nil), a.rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Func < rows[j].Func })
	return rows
}

// enterQuery switches the executing query (on KindQueryTag events).
func (a *attribution) enterQuery(id uint64) {
	if i, ok := a.qindex[id]; ok {
		a.curQ = i
		return
	}
	a.curQ = a.addQueryRow(id)
}

// leaveQuery clears the query scope (on context switches: the next
// batch is untagged until its own tag arrives).
func (a *attribution) leaveQuery() { a.curQ = -1 }

// addQueryRow appends a fresh row for query id. Tagged captures carry
// a handful of distinct IDs, so this is first-sight-only like addRow.
//
//cgplint:coldpath rows are created on first sight of a query tag; the steady-state loop only reads the index
func (a *attribution) addQueryRow(id uint64) int32 {
	i := int32(len(a.qrows))
	a.qrows = append(a.qrows, QueryAttribution{Query: id})
	a.qindex[id] = i
	return i
}

// qcur returns the executing query's row, or nil outside any tagged
// query. The pointer is valid only until the next enterQuery.
func (a *attribution) qcur() *QueryAttribution {
	if a.curQ < 0 {
		return nil
	}
	return &a.qrows[a.curQ]
}

// qat returns the query row at a previously captured index (from an
// inflight entry's qissuer), or nil for the -1 "no query" sentinel.
func (a *attribution) qat(i int32) *QueryAttribution {
	if i < 0 {
		return nil
	}
	return &a.qrows[i]
}

// qsorted returns a copy of the query rows ordered by trace ID, the
// deterministic order Stats exposes (and the join key order
// `cgptrace replay -by-query` prints).
func (a *attribution) qsorted() []QueryAttribution {
	rows := append([]QueryAttribution(nil), a.qrows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Query < rows[j].Query })
	return rows
}
