package cpu

import (
	"testing"

	"cgp/internal/isa"
	"cgp/internal/prefetch"
	"cgp/internal/trace"
	"cgp/internal/units"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.SwitchPenalty = 24
	return cfg
}

func run(addr isa.Addr, n int32) trace.Event {
	return trace.Event{Kind: trace.KindRun, Addr: addr, N: n}
}

func TestThroughputOnly(t *testing.T) {
	c := New(testConfig(), nil)
	// 64 instructions, all hitting after first-line misses; the
	// throughput component is 64/4 = 16 cycles.
	c.Event(run(0x400000, 64))
	s := c.Finish()
	if s.Instructions != 64 {
		t.Errorf("instructions = %d", s.Instructions)
	}
	if s.ICacheMisses != 8 { // 64 instr = 8 lines, all cold
		t.Errorf("misses = %d, want 8", s.ICacheMisses)
	}
	wantMin := units.Cycles(16) // throughput floor
	if s.Cycles < wantMin {
		t.Errorf("cycles = %d < %d", s.Cycles, wantMin)
	}
}

func TestFetchCarryAccumulates(t *testing.T) {
	c := New(testConfig(), nil)
	// 2 instructions per event, 4 events: exactly 2 cycles of
	// throughput, not 4 (the carry must accumulate across events).
	for i := 0; i < 4; i++ {
		c.Event(run(0x400000, 2))
	}
	s := c.Finish()
	base := s.Cycles - s.IMissStallCycles
	if base != 2 {
		t.Errorf("throughput cycles = %d, want 2", base)
	}
}

func TestMissLatency(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, nil)
	c.Event(run(0x400000, 8)) // one line, cold: L2 miss -> memory
	s := c.Finish()
	wantStall := cfg.L2Latency + cfg.MemLatency
	if s.IMissStallCycles != wantStall {
		t.Errorf("stall = %d, want %d", s.IMissStallCycles, wantStall)
	}

	// Second access to the same line: no stall.
	c2 := New(cfg, nil)
	c2.Event(run(0x400000, 8))
	before := c2.Finish().IMissStallCycles
	c2.Event(run(0x400000, 8))
	after := c2.Finish().IMissStallCycles
	if after != before {
		t.Errorf("re-fetch of resident line stalled (%d -> %d)", before, after)
	}
}

func TestL2HitCheaperThanMemory(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, nil)
	c.Event(run(0x400000, 8))
	first := c.Finish().IMissStallCycles
	// Evict from L1I by filling its sets; 32KB 2-way with 32B lines =
	// 512 sets; lines mapping to set of 0x400000 are 512 lines apart.
	for i := 1; i <= 2; i++ {
		c.Event(run(0x400000+isa.Addr(i*512*isa.LineBytes), 8))
	}
	c.Event(run(0x400000, 8)) // L1 miss, L2 hit
	s := c.Finish()
	total := s.IMissStallCycles
	// The refetch must cost ~L2Latency, far below the memory trip.
	refetch := total - first - 2*(cfg.L2Latency+cfg.MemLatency)
	if refetch > cfg.L2Latency+2 || refetch < cfg.L2Latency-2 {
		t.Errorf("L2-hit refetch stall = %d, want ~%d", refetch, cfg.L2Latency)
	}
}

func TestPerfectICache(t *testing.T) {
	cfg := testConfig()
	cfg.PerfectICache = true
	c := New(cfg, prefetch.NewNL(4))
	c.Event(run(0x400000, 800))
	s := c.Finish()
	if s.ICacheMisses != 0 || s.IMissStallCycles != 0 {
		t.Errorf("perfect I-cache missed: %+v", s)
	}
	if s.TotalPrefetch().Issued != 0 {
		t.Error("perfect I-cache issued prefetches")
	}
	if s.Cycles != 200 {
		t.Errorf("cycles = %d, want exactly 200 (throughput only)", s.Cycles)
	}
}

func TestPrefetchHitAccounting(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, prefetch.NewNL(2))
	// Fetch line 0: NL prefetches lines 1 and 2. Burn enough cycles
	// (via an already-resident loop) for them to arrive, then fetch
	// line 1: a pref hit.
	c.Event(run(0x400000, 8))
	c.Event(trace.Event{Kind: trace.KindLoop, Addr: 0x400000, N: 8, Iters: 100})
	c.Event(run(0x400020, 8))
	s := c.Finish()
	// line 0 issues {1,2}; the later fetch of line 1 issues {2,3} of
	// which 2 squashes: 3 issued in total.
	if s.NL.Issued != 3 {
		t.Fatalf("issued = %d, want 3", s.NL.Issued)
	}
	if s.NL.PrefHits != 1 {
		t.Errorf("pref hits = %d, want 1 (stats: %+v)", s.NL.PrefHits, s.NL)
	}
	if s.ICacheMisses != 1 {
		t.Errorf("demand misses = %d, want 1 (only line 0)", s.ICacheMisses)
	}
}

func TestDelayedHitAccounting(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, prefetch.NewNL(2))
	// Fetch line 0 then line 1 immediately: the prefetch is still in
	// flight -> delayed hit with a partial stall.
	c.Event(run(0x400000, 8))
	c.Event(run(0x400020, 8))
	s := c.Finish()
	if s.NL.DelayedHits != 1 {
		t.Errorf("delayed hits = %d, want 1 (%+v)", s.NL.DelayedHits, s.NL)
	}
	if s.ICacheMisses != 1 {
		t.Errorf("misses = %d, want 1", s.ICacheMisses)
	}
}

func TestUselessPrefetchAccounting(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, prefetch.NewNL(1))
	// Prefetch line 1 (via fetching line 0), never touch it, then force
	// its eviction by filling its set (512-set 2-way).
	c.Event(run(0x400000, 8))
	conflict := isa.Addr(0x400020)
	for i := 1; i <= 4; i++ {
		// Touch conflicting lines in set 1 without triggering more NL
		// into that set... NL prefetches follow each fetch, so drain
		// the queue by spacing sets widely: lines at set 1 + k*512.
		c.Event(run(conflict+isa.Addr(i*512*isa.LineBytes), 8))
	}
	s := c.Finish()
	if s.NL.Useless == 0 {
		t.Errorf("no useless prefetches recorded: %+v", s.NL)
	}
}

func TestSquashResident(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, prefetch.NewNL(2))
	// Lines 0,1,2: the NL windows overlap, so the requests for lines
	// already in flight must squash (2 of them).
	c.Event(run(0x400000, 24))
	s := c.Finish()
	if s.NL.Squashed != 2 {
		t.Errorf("squashed = %d, want 2 (%+v)", s.NL.Squashed, s.NL)
	}
}

func TestCallReturnRAS(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, nil)
	call := trace.Event{Kind: trace.KindCall, Addr: 0x400010, Target: 0x402000, CallerStart: 0x400000}
	ret := trace.Event{Kind: trace.KindReturn, Addr: 0x402000, Target: 0x400014, CallerStart: 0x400000}
	c.Event(call)
	c.Event(ret)
	s := c.Finish()
	if s.Calls != 1 || s.Returns != 1 {
		t.Fatalf("calls/returns = %d/%d", s.Calls, s.Returns)
	}
	if s.RASMispredicts != 0 {
		t.Errorf("RAS mispredicted a matched call/return")
	}

	// A return with no matching call mispredicts.
	c2 := New(cfg, nil)
	c2.Event(ret)
	if c2.Finish().RASMispredicts != 1 {
		t.Error("unmatched return not counted as mispredict")
	}
}

func TestContextSwitchFlushesRAS(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, nil)
	call := trace.Event{Kind: trace.KindCall, Addr: 0x400010, Target: 0x402000, CallerStart: 0x400000}
	ret := trace.Event{Kind: trace.KindReturn, Addr: 0x402000, Target: 0x400014, CallerStart: 0x400000}
	c.Event(call)
	c.Event(trace.Event{Kind: trace.KindSwitch})
	c.Event(ret)
	s := c.Finish()
	if s.RASMispredicts != 1 {
		t.Errorf("RAS survived a context switch: %+v", s.RASMispredicts)
	}
	if s.Switches != 1 {
		t.Errorf("switches = %d", s.Switches)
	}
}

func TestBranchPenalty(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, nil)
	// An always-taken branch: after warmup no penalty.
	br := trace.Event{Kind: trace.KindBranch, Addr: 0x400010, Target: 0x400080, Taken: true}
	for i := 0; i < 10; i++ {
		c.Event(br)
	}
	cyclesAfterWarmup := c.Cycle()
	for i := 0; i < 10; i++ {
		c.Event(br)
	}
	steady := c.Cycle() - cyclesAfterWarmup
	if steady != 10*cfg.TakenBranchBubble {
		t.Errorf("steady-state taken-branch cost = %d, want %d", steady, 10*cfg.TakenBranchBubble)
	}
}

func TestDataSideAccounting(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, nil)
	c.Event(trace.Event{Kind: trace.KindData, Addr: 0x40000000, N: 64, Taken: true})
	s := c.Finish()
	if s.DLineAccesses != 2 || s.DCacheMisses != 2 {
		t.Fatalf("data accesses/misses = %d/%d, want 2/2", s.DLineAccesses, s.DCacheMisses)
	}
	// Resident now.
	c.Event(trace.Event{Kind: trace.KindData, Addr: 0x40000000, N: 64})
	s = c.Finish()
	if s.DCacheMisses != 2 {
		t.Errorf("re-access missed: %d", s.DCacheMisses)
	}
}

func TestDirtyWritebackTraffic(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, nil)
	// Write a line, then evict it with 2 conflicting reads (2-way):
	// the writeback shows up as an extra L2 transfer.
	c.Event(trace.Event{Kind: trace.KindData, Addr: 0x40000000, N: 8, Taken: true})
	c.Event(trace.Event{Kind: trace.KindData, Addr: 0x40000000 + 512*32, N: 8})
	c.Event(trace.Event{Kind: trace.KindData, Addr: 0x40000000 + 2*512*32, N: 8})
	c.Event(trace.Event{Kind: trace.KindData, Addr: 0x40000000 + 3*512*32, N: 8})
	s := c.Finish()
	if s.L2Accesses != 5 { // 4 fills + 1 writeback
		t.Errorf("L2 accesses = %d, want 5", s.L2Accesses)
	}
}

func TestLoopAccounting(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, nil)
	c.Event(trace.Event{Kind: trace.KindLoop, Addr: 0x400000, N: 16, Iters: 50})
	s := c.Finish()
	if s.Instructions != 800 {
		t.Errorf("instructions = %d, want 800", s.Instructions)
	}
	if s.ICacheMisses != 2 { // 16 instructions = 2 lines, fetched once
		t.Errorf("misses = %d, want 2", s.ICacheMisses)
	}
	if s.Branches != 50 || s.BranchMispredicts != 1 {
		t.Errorf("branches/mispredicts = %d/%d, want 50/1", s.Branches, s.BranchMispredicts)
	}
}

func TestFIFONoPriorityDelaysDemand(t *testing.T) {
	// A burst of prefetches ahead of a demand miss must delay the
	// demand miss (the §3.3 no-priority FIFO).
	cfg := testConfig()
	quiet := New(cfg, nil)
	quiet.Event(run(0x400000, 8))
	baseline := quiet.Finish().IMissStallCycles

	busy := New(cfg, prefetch.NewNL(8))
	busy.Event(run(0x500000, 8)) // miss + 8 prefetches queued
	busy.Event(run(0x400000, 8)) // demand miss queues behind them
	total := busy.Finish().IMissStallCycles
	// The second demand miss alone must have cost more than an
	// uncontended one.
	if total <= 2*baseline {
		t.Errorf("demand miss not delayed by prefetch queue: total=%d baseline=%d", total, baseline)
	}
}

func TestCGPOnCallWiring(t *testing.T) {
	// The CPU must forward call/return events to the prefetcher with
	// the *predicted* caller start from the RAS.
	cfg := testConfig()
	rec := &recordingPrefetcher{}
	c := New(cfg, rec)
	c.Event(trace.Event{Kind: trace.KindCall, Addr: 0x400010, Target: 0x402000, CallerStart: 0x400000})
	c.Event(trace.Event{Kind: trace.KindReturn, Addr: 0x402000, Target: 0x400014, CallerStart: 0x400000})
	if len(rec.calls) != 1 || rec.calls[0] != 0x402000 {
		t.Errorf("OnCall targets = %#v", rec.calls)
	}
	if len(rec.returns) != 1 || rec.returns[0] != 0x400000 {
		t.Errorf("OnReturn predicted caller starts = %#v", rec.returns)
	}
}

type recordingPrefetcher struct {
	calls   []isa.Addr
	returns []isa.Addr
}

func (r *recordingPrefetcher) Name() string                     { return "rec" }
func (r *recordingPrefetcher) OnFetch(isa.Addr, prefetch.Issue) {}
func (r *recordingPrefetcher) OnCall(target, _ isa.Addr, _ prefetch.Issue) {
	r.calls = append(r.calls, target)
}
func (r *recordingPrefetcher) OnReturn(predCaller, _ isa.Addr, _ prefetch.Issue) {
	r.returns = append(r.returns, predCaller)
}

func TestDemandPriorityBypassesQueue(t *testing.T) {
	// With the ablation on, a demand miss behind a prefetch burst costs
	// no more than an uncontended one.
	cfg := testConfig()
	cfg.DemandPriority = true
	quiet := New(cfg, nil)
	quiet.Event(run(0x400000, 8))
	baseline := quiet.Finish().IMissStallCycles

	busy := New(cfg, prefetch.NewNL(8))
	busy.Event(run(0x500000, 8))
	firstStall := busy.Finish().IMissStallCycles
	busy.Event(run(0x400000, 8))
	secondStall := busy.Finish().IMissStallCycles - firstStall
	if secondStall > baseline {
		t.Errorf("prioritized demand miss stalled %d > uncontended %d", secondStall, baseline)
	}
}

func TestPrefetchIntoL2Only(t *testing.T) {
	cfg := testConfig()
	cfg.PrefetchIntoL2Only = true
	c := New(cfg, prefetch.NewNL(2))
	// Fetch line 0; the prefetches for lines 1,2 warm L2 only. Burn
	// time, then fetch line 1: it must MISS in L1I but hit in L2.
	c.Event(run(0x400000, 8))
	c.Event(trace.Event{Kind: trace.KindLoop, Addr: 0x400000, N: 8, Iters: 200})
	c.Event(run(0x400020, 8))
	s := c.Finish()
	if s.NL.PrefHits != 0 || s.NL.DelayedHits != 0 {
		t.Errorf("L2-only prefetch produced L1 hits: %+v", s.NL)
	}
	if s.ICacheMisses != 2 {
		t.Errorf("misses = %d, want 2 (both lines miss L1I)", s.ICacheMisses)
	}
	// But the second demand miss must have been an L2 hit: memory trips
	// are line0's demand, lines 1-2's prefetches, and line 3's prefetch
	// (triggered by the second fetch) — line 1's demand is not among
	// them.
	if s.L2Misses != 4 {
		t.Errorf("L2 misses = %d, want 4", s.L2Misses)
	}
}

// TestPrefetchQueueCompaction drives a FIFO that never fully drains:
// every step pushes one inflight whose data arrives 1000 cycles later,
// so the newest entries are always pending. The ring must stabilize at
// the steady-state depth (~lat entries, rounded up to a power of two)
// instead of retaining the entire issue history.
func TestPrefetchQueueCompaction(t *testing.T) {
	c := New(testConfig(), prefetch.None{})
	const steps, lat = 4096, 1000
	maxLen := 0
	for i := 0; i < steps; i++ {
		line := isa.Addr(0x400000 + i*isa.LineBytes)
		c.fifo.push(inflight{line: line, readyAt: units.Cycles(i + lat)})
		c.cycle = units.Cycles(i)
		c.drainCompleted()
		if len(c.fifo.buf) > maxLen {
			maxLen = len(c.fifo.buf)
		}
	}
	// Steady state keeps ~lat pending entries; the power-of-two ring
	// bounds the backing array at the next doubling instead of the full
	// history.
	if maxLen > 2*lat {
		t.Errorf("ring grew to %d entries (pending ~%d); FIFO not bounded", maxLen, lat)
	}
	// Let everything complete: the FIFO must empty and every line must
	// have been filled exactly once (no entries lost).
	c.cycle = steps + lat
	c.drainCompleted()
	if !c.fifo.empty() || c.fifo.live != 0 {
		t.Errorf("FIFO not drained: depth=%d live=%d", c.fifo.tail-c.fifo.head, c.fifo.live)
	}
	filled := c.l1i.Stats().Inserts
	if filled != int64(steps) {
		t.Errorf("L1I insertions = %d, want %d", filled, steps)
	}
}
