package cpu_test

// Differential tests for the optimized simulation kernel: the live
// cpu.CPU (flat caches, inflight ring, batched dispatch) must produce
// *cpu.Stats identical field-for-field to internal/refsim's frozen
// pre-optimization kernel on the same event stream. The streams are
// seeded-random mixes of every event kind, driven through call-stack
// bookkeeping so calls and returns nest the way a real trace does.
// These tests live in an external package because refsim imports cpu.

import (
	"math/rand"
	"reflect"
	"testing"

	"cgp/internal/core"
	"cgp/internal/cpu"
	"cgp/internal/isa"
	"cgp/internal/prefetch"
	"cgp/internal/program"
	"cgp/internal/refsim"
	"cgp/internal/trace"
)

const (
	genFuncs     = 32
	genFuncBytes = 0x400
	genTextBase  = isa.Addr(0x400000)
	genDataBase  = isa.Addr(0x800000)
)

func funcStart(fn int) isa.Addr {
	return genTextBase + isa.Addr(fn)*genFuncBytes
}

// genEvents synthesizes n events from seed, maintaining a call stack so
// KindCall/KindReturn carry consistent function identities — the CGP
// prefetcher's CGHC is only exercised by plausible call structure.
func genEvents(seed int64, n int) []trace.Event {
	rng := rand.New(rand.NewSource(seed))
	type frame struct {
		fn  int
		ret isa.Addr
	}
	stack := []frame{{fn: 0}}
	pc := funcStart(0)
	evs := make([]trace.Event, 0, n)
	for len(evs) < n {
		cur := stack[len(stack)-1].fn
		curStart := funcStart(cur)
		// Keep pc inside the current function's byte range.
		if pc < curStart || pc >= curStart+genFuncBytes-64 {
			pc = curStart + isa.Addr(rng.Intn(genFuncBytes/2))&^isa.Addr(isa.InstrBytes-1)
		}
		switch k := rng.Intn(100); {
		case k < 30: // run
			nInstr := int32(1 + rng.Intn(32))
			evs = append(evs, trace.Event{Kind: trace.KindRun, Addr: pc, N: nInstr})
			pc += isa.Addr(nInstr) * isa.InstrBytes
		case k < 40: // loop
			evs = append(evs, trace.Event{
				Kind: trace.KindLoop, Addr: pc,
				N: int32(1 + rng.Intn(16)), Iters: int32(1 + rng.Intn(20)),
			})
		case k < 55: // branch
			evs = append(evs, trace.Event{
				Kind: trace.KindBranch, Addr: pc,
				Target: curStart + isa.Addr(rng.Intn(genFuncBytes/2)),
				Taken:  rng.Intn(2) == 0,
			})
		case k < 70: // call
			callee := rng.Intn(genFuncs)
			evs = append(evs, trace.Event{
				Kind: trace.KindCall, Addr: pc,
				Target:      funcStart(callee),
				CallerStart: curStart,
				Fn:          program.FuncID(callee),
				Caller:      program.FuncID(cur),
			})
			stack = append(stack, frame{fn: callee, ret: pc + isa.InstrBytes})
			pc = funcStart(callee)
		case k < 80: // return
			if len(stack) < 2 {
				continue
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			caller := stack[len(stack)-1].fn
			evs = append(evs, trace.Event{
				Kind: trace.KindReturn, Addr: funcStart(top.fn),
				Target:      top.ret,
				CallerStart: funcStart(caller),
				Fn:          program.FuncID(top.fn),
				Caller:      program.FuncID(caller),
			})
			pc = top.ret
		case k < 95: // data
			evs = append(evs, trace.Event{
				Kind:  trace.KindData,
				Addr:  genDataBase + isa.Addr(rng.Intn(1<<16)),
				N:     int32(1 + rng.Intn(64)),
				Taken: rng.Intn(4) == 0, // write
			})
		default: // context switch
			evs = append(evs, trace.Event{Kind: trace.KindSwitch, N: int32(rng.Intn(4))})
		}
	}
	return evs
}

// kernelVariant is one (config, prefetcher) point of the differential
// sweep. Prefetchers are stateful, so each kernel gets its own instance
// built by the factory.
type kernelVariant struct {
	name string
	cfg  func() cpu.Config
	pf   func() prefetch.Prefetcher
}

func variants() []kernelVariant {
	base := func() cpu.Config {
		cfg := cpu.DefaultConfig()
		cfg.SwitchPenalty = 24
		return cfg
	}
	return []kernelVariant{
		{"none", base, func() prefetch.Prefetcher { return prefetch.None{} }},
		{"nl4", base, func() prefetch.Prefetcher { return prefetch.NewNL(4) }},
		{"nl8", base, func() prefetch.Prefetcher { return prefetch.NewNL(8) }},
		{"ranl4-2", base, func() prefetch.Prefetcher { return prefetch.NewRunAheadNL(4, 2) }},
		{"cgp4", base, func() prefetch.Prefetcher { return core.New(core.DefaultConfig()) }},
		{"nl4-demand-priority", func() cpu.Config {
			cfg := base()
			cfg.DemandPriority = true
			return cfg
		}, func() prefetch.Prefetcher { return prefetch.NewNL(4) }},
		{"nl4-l2only", func() cpu.Config {
			cfg := base()
			cfg.PrefetchIntoL2Only = true
			return cfg
		}, func() prefetch.Prefetcher { return prefetch.NewNL(4) }},
		{"cgp4-flush-ras", func() cpu.Config {
			cfg := base()
			cfg.FlushRASOnSwitch = true
			return cfg
		}, func() prefetch.Prefetcher { return core.New(core.DefaultConfig()) }},
	}
}

// TestDifferentialAgainstRefsim replays identical seeded streams through
// the optimized kernel and the frozen reference kernel and requires the
// full Stats structs to match exactly — cycles, every cache counter,
// every prefetch portion counter. Any behavioral drift introduced by the
// flat-cache or ring rewrites shows up here as a field diff.
func TestDifferentialAgainstRefsim(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				evs := genEvents(seed, 20000)
				opt := cpu.New(v.cfg(), v.pf())
				ref := refsim.New(v.cfg(), v.pf())
				for _, ev := range evs {
					opt.Event(ev)
					ref.Event(ev)
				}
				so, sr := opt.Finish(), ref.Finish()
				if !reflect.DeepEqual(so, sr) {
					t.Fatalf("seed %d: optimized and reference kernels diverged\noptimized: %+v\nreference: %+v", seed, so, sr)
				}
			}
		})
	}
}

// TestEventBatchMatchesPerEvent pins the batch entry point's contract:
// EventBatch over arbitrary batch boundaries must equal per-event Event
// calls exactly.
func TestEventBatchMatchesPerEvent(t *testing.T) {
	evs := genEvents(11, 20000)
	for _, batch := range []int{1, 7, 512, 4096} {
		perEvent := cpu.New(cpu.DefaultConfig(), prefetch.NewNL(4))
		batched := cpu.New(cpu.DefaultConfig(), prefetch.NewNL(4))
		for _, ev := range evs {
			perEvent.Event(ev)
		}
		for i := 0; i < len(evs); i += batch {
			end := i + batch
			if end > len(evs) {
				end = len(evs)
			}
			batched.EventBatch(evs[i:end])
		}
		if !reflect.DeepEqual(perEvent.Finish(), batched.Finish()) {
			t.Fatalf("batch size %d: EventBatch diverged from per-event delivery", batch)
		}
	}
}

// TestEventLoopDoesNotAllocate is the steady-state allocation regression
// gate: once the CPU is warmed (ring and index grown to their working
// size), consuming events must not allocate at all. This is what the old
// kernel's per-issue *inflight and per-fetch method-value closure cost.
func TestEventLoopDoesNotAllocate(t *testing.T) {
	evs := genEvents(5, 20000)
	c := cpu.New(cpu.DefaultConfig(), prefetch.NewNL(4))
	c.EventBatch(evs) // warm: caches filled, ring at steady-state size
	allocs := testing.AllocsPerRun(10, func() {
		c.EventBatch(evs[:2000])
	})
	if allocs != 0 {
		t.Errorf("event loop allocates %.1f times per 2000-event batch, want 0", allocs)
	}
}
