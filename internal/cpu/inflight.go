package cpu

import (
	"cgp/internal/isa"
	"cgp/internal/prefetch"
	"cgp/internal/units"
)

// inflight tracks a prefetch that has been issued to the L2 FIFO but
// has not yet filled L1I. Entries are value-typed and live inside the
// ring buffer — the steady-state event loop never heap-allocates one.
type inflight struct {
	line    isa.Addr // line-aligned address
	readyAt units.Cycles
	portion prefetch.Portion
	done    bool
	// issuedAt / issuer / qissuer carry the attribution provenance of
	// the prefetch (issue cycle, issuing function's row index, and
	// issuing query's row index or -1); all stay zero when attribution
	// is disabled.
	issuedAt units.Cycles
	issuer   int32
	qissuer  int32
}

// inflightRing is the prefetch FIFO plus its lookup index. Completion
// order equals issue order because the L1<->L2 bus is FIFO, so the
// queue is a power-of-two ring of inflight values addressed by absolute
// sequence number; the by-line membership test the old model paid a Go
// map for is a small open-addressed hash table (linear probing with
// backward-shift deletion, so it carries no tombstones and never
// rehashes in steady state). The FIFO is bounded and shallow — an entry
// leaves at most (L2+memory latency)/bus-occupancy issues after it
// enters — so both structures reach a fixed size early in a run and
// allocate nothing afterwards.
type inflightRing struct {
	buf  []inflight // power-of-two length; seq s lives at buf[s&(len-1)]
	head uint64     // absolute sequence of the oldest entry
	tail uint64     // absolute sequence one past the newest

	// Index from line address to seq+1 (0 marks an empty slot).
	keys      []isa.Addr
	vals      []uint64
	live      int
	hashShift uint
}

const (
	ringInitLen = 64
	idxInitLen  = 128
	// hashMul is the 64-bit golden-ratio multiplier of Fibonacci
	// hashing; the index keeps the high bits, which mixes the
	// line-aligned (low-zero) addresses well.
	hashMul = 0x9E3779B97F4A7C15
)

func (r *inflightRing) init() {
	r.buf = make([]inflight, ringInitLen)
	r.keys = make([]isa.Addr, idxInitLen)
	r.vals = make([]uint64, idxInitLen)
	r.hashShift = 64 - uint(len64(idxInitLen))
}

// len64 returns log2(n) for power-of-two n.
func len64(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

func (r *inflightRing) empty() bool { return r.head == r.tail }

func (r *inflightRing) slot(line isa.Addr) uint64 {
	return (uint64(line) * hashMul) >> r.hashShift
}

// lookup returns the in-flight entry for line, or nil. The pointer is
// valid until the next push.
func (r *inflightRing) lookup(line isa.Addr) *inflight {
	mask := uint64(len(r.keys) - 1)
	for i := r.slot(line); ; i = (i + 1) & mask {
		v := r.vals[i]
		if v == 0 {
			return nil
		}
		if r.keys[i] == line {
			return &r.buf[(v-1)&uint64(len(r.buf)-1)]
		}
	}
}

// push appends an entry to the FIFO and indexes it. The caller must
// have checked that line is not already in flight.
func (r *inflightRing) push(e inflight) {
	if int(r.tail-r.head) == len(r.buf) {
		r.growRing()
	}
	r.buf[r.tail&uint64(len(r.buf)-1)] = e
	if (r.live+1)*4 > len(r.keys)*3 {
		r.growIndex()
	}
	mask := uint64(len(r.keys) - 1)
	i := r.slot(e.line)
	for r.vals[i] != 0 {
		i = (i + 1) & mask
	}
	r.keys[i] = e.line
	r.vals[i] = r.tail + 1
	r.live++
	r.tail++
}

// front returns the oldest entry; the FIFO must not be empty.
func (r *inflightRing) front() *inflight {
	return &r.buf[r.head&uint64(len(r.buf)-1)]
}

// popFront drops the oldest entry. It does not touch the index: the
// caller removes the line first (or already removed it when the entry
// was consumed as a delayed hit and marked done).
func (r *inflightRing) popFront() { r.head++ }

// remove deletes line from the index using backward-shift compaction,
// keeping every remaining probe chain unbroken without tombstones.
func (r *inflightRing) remove(line isa.Addr) {
	mask := uint64(len(r.keys) - 1)
	i := r.slot(line)
	for {
		if r.vals[i] == 0 {
			return
		}
		if r.keys[i] == line {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		if r.vals[j] == 0 {
			break
		}
		// The entry at j may fill the hole at i only if its home slot
		// is cyclically at or before i; otherwise moving it would break
		// its own probe chain.
		if (j-r.slot(r.keys[j]))&mask >= (j-i)&mask {
			r.keys[i], r.vals[i] = r.keys[j], r.vals[j]
			i = j
		}
	}
	r.vals[i] = 0
	r.live--
}

// growRing doubles the ring, re-seating entries so seq&mask stays
// correct under the new mask.
//
//cgplint:coldpath the ring reaches its steady-state size within the first memory-latency window; growth is a warmup-only event
func (r *inflightRing) growRing() {
	nb := make([]inflight, len(r.buf)*2)
	oldMask := uint64(len(r.buf) - 1)
	newMask := uint64(len(nb) - 1)
	for s := r.head; s != r.tail; s++ {
		nb[s&newMask] = r.buf[s&oldMask]
	}
	r.buf = nb
}

// growIndex doubles the hash table and reinserts the live keys.
//
//cgplint:coldpath the index reaches its steady-state size within the first memory-latency window; growth is a warmup-only event
func (r *inflightRing) growIndex() {
	oldKeys, oldVals := r.keys, r.vals
	r.keys = make([]isa.Addr, len(oldKeys)*2)
	r.vals = make([]uint64, len(oldVals)*2)
	r.hashShift--
	mask := uint64(len(r.keys) - 1)
	for oi, v := range oldVals {
		if v == 0 {
			continue
		}
		i := r.slot(oldKeys[oi])
		for r.vals[i] != 0 {
			i = (i + 1) & mask
		}
		r.keys[i] = oldKeys[oi]
		r.vals[i] = v
	}
}
