package cpu

import (
	"cgp/internal/branch"
	"cgp/internal/cache"
	"cgp/internal/isa"
	"cgp/internal/prefetch"
	"cgp/internal/sample"
	"cgp/internal/trace"
	"cgp/internal/units"
)

// Sampled simulation: the CPU implements trace.SampledConsumer, so a
// sampled replay drives it through three tiers.
//
//   - Skipped spans (SkipSpan) deliver no events at all: only the
//     exact instruction count is folded in, so whole-run instruction
//     totals stay exact in every mode.
//   - Functional-warming spans run ffEvent instead of event: caches,
//     the prefetcher's call-graph history, branch predictor and RAS
//     are updated — the state whose history depth decides how accurate
//     the next window is — but nothing touches the cycle clock, the
//     inflight ring or the bus model.
//   - Detailed spans run the ordinary event loop; measurement windows
//     additionally snapshot cycle/instruction/miss deltas into
//     sample.Windows for the estimator.
//
// At every transition out of detailed mode the inflight prefetch ring
// is flushed into L1I: those transfers would have completed during the
// skipped simulated time, and leaving them queued would leak stale
// ready-times into the next window.
//
// In sampled runs, Stats.Cycles covers only the detailed spans;
// Stats.Sample carries the whole-run estimates (typed units.EstCycles,
// with relative 95% CIs). Stats.Instructions remains the exact
// whole-run count. All other raw counters (misses, branches, cache and
// prefetcher stats) cover the decoded events — functional plus
// detailed — and are diagnostics, not whole-run measurements.

// sampler is the per-CPU sampling state, nil unless EnableSampling.
type sampler struct {
	// ffIssueFn is the functional-mode prefetch sink, bound once like
	// issueFn to avoid a closure allocation per event.
	ffIssueFn prefetch.Issue

	mode      trace.SpanKind
	measuring bool

	// Window-open snapshots.
	openCycles  units.Cycles
	openInstrs  units.Instrs
	openIMisses int64

	windows []sample.Window

	skippedEvents  int64
	skippedInstrs  units.Instrs
	ffEvents       int64
	warmEvents     int64
	measuredEvents int64
}

var _ trace.SampledConsumer = (*CPU)(nil)

// EnableSampling prepares the CPU to be driven by a sampled replay
// (trace.ReplaySampled). Call it before consuming events. Without a
// sampled driver the CPU behaves exactly as before — events arriving
// outside any span run in full detail — so enabling it never corrupts
// a full replay.
func (c *CPU) EnableSampling() {
	if c.smp == nil {
		c.smp = &sampler{mode: trace.SpanDetailWarm}
		c.smp.ffIssueFn = c.ffIssue
	}
}

// SamplingEnabled reports whether EnableSampling was called.
func (c *CPU) SamplingEnabled() bool { return c.smp != nil }

// BeginSpan implements trace.SampledConsumer: subsequent events belong
// to a span of the given kind.
func (c *CPU) BeginSpan(kind trace.SpanKind) {
	s := c.smp
	if s == nil {
		return
	}
	c.closeWindow()
	if kind == trace.SpanFunctionalWarm && s.mode != trace.SpanFunctionalWarm {
		c.flushInflight()
	}
	if kind == trace.SpanMeasure {
		s.measuring = true
		s.openCycles = c.cycle
		s.openInstrs = c.stats.Instructions
		s.openIMisses = c.stats.ICacheMisses
	}
	s.mode = kind
}

// SkipSpan implements trace.SampledConsumer: events skipped events went
// by undecoded, carrying instrs instructions. The exact instruction
// count keeps Stats.Instructions whole-run-accurate, which is what the
// estimator scales window rates by.
func (c *CPU) SkipSpan(events int64, instrs units.Instrs) {
	// Close any open window before folding in the skipped
	// instructions, or the window's instruction delta would swallow
	// the whole skipped span and crater its rate.
	c.closeWindow()
	c.stats.Instructions += instrs
	s := c.smp
	if s == nil {
		return
	}
	c.flushInflight()
	s.mode = trace.SpanSkip
	s.skippedEvents += events
	s.skippedInstrs += instrs
}

// closeWindow seals an open measurement window into the estimator's
// window list.
func (c *CPU) closeWindow() {
	s := c.smp
	if s == nil || !s.measuring {
		return
	}
	s.measuring = false
	s.windows = append(s.windows, sample.Window{
		Cycles: c.cycle - s.openCycles,
		Instrs: c.stats.Instructions - s.openInstrs,
		Misses: c.stats.ICacheMisses - s.openIMisses,
	})
}

// flushInflight retires every queued prefetch into L1I regardless of
// ready time: the simulated time about to be skipped dwarfs any L2 or
// memory latency, so all in-flight transfers complete before the next
// detailed span. Entries already consumed as delayed hits just drop.
func (c *CPU) flushInflight() {
	for !c.fifo.empty() {
		inf := c.fifo.front()
		line, done := inf.line, inf.done
		meta := lineMeta{prefetched: true, portion: inf.portion,
			issuedAt: inf.issuedAt, issuer: inf.issuer, qissuer: inf.qissuer}
		c.fifo.popFront()
		if done {
			continue
		}
		c.fifo.remove(line)
		c.insertL1I(line, meta)
	}
}

// sampledEvent routes one event according to the current span mode.
func (c *CPU) sampledEvent(ev trace.Event) {
	s := c.smp
	switch s.mode {
	case trace.SpanFunctionalWarm:
		s.ffEvents++
		c.ffEvent(&ev)
	case trace.SpanMeasure:
		s.measuredEvents++
		c.event(ev)
	default:
		s.warmEvents++
		c.event(ev)
	}
}

// ---- functional fast-forward ----

// ffEvent is the functional twin of event: it performs every
// architectural state update — cache contents, branch predictor, RAS,
// prefetcher call-graph history, attribution scope — and every
// decoded-stream counter, but never touches the cycle clock, stall
// accounting, the bus or the inflight ring. Cost is dominated by the
// cache probes, keeping functional warming several times cheaper than
// detailed simulation.
func (c *CPU) ffEvent(ev *trace.Event) {
	switch ev.Kind {
	case trace.KindRun:
		if ev.N <= 0 {
			return
		}
		c.stats.Instructions += units.Instrs(ev.N)
		if !c.cfg.PerfectICache {
			c.ffTouchI(ev.Addr, int(ev.N))
		}
	case trace.KindLoop:
		if ev.N <= 0 || ev.Iters <= 0 {
			return
		}
		c.stats.Instructions += units.Instrs(int64(ev.N) * int64(ev.Iters))
		c.loopBranches += int64(ev.Iters)
		c.loopMispredicts++
		if !c.cfg.PerfectICache {
			c.ffTouchI(ev.Addr, int(ev.N))
		}
	case trace.KindBranch:
		c.bp.Predict(ev.Addr, ev.Taken)
	case trace.KindCall:
		c.stats.Calls++
		if c.attr != nil {
			c.attr.enter(ev.Target)
		}
		c.ras.Push(branch.RASEntry{
			ReturnAddr:  ev.Addr + isa.InstrBytes,
			CallerStart: ev.CallerStart,
		})
		if !c.cfg.PerfectICache {
			c.pf.OnCall(ev.Target, ev.CallerStart, c.smp.ffIssueFn)
		}
	case trace.KindReturn:
		if c.attr != nil {
			c.attr.enter(ev.CallerStart)
		}
		pred, ok := c.ras.Pop()
		c.ras.RecordOutcome(pred, ok, ev.Target)
		if !c.cfg.PerfectICache {
			var predCaller isa.Addr
			if ok {
				predCaller = pred.CallerStart
			}
			c.pf.OnReturn(predCaller, ev.Addr, c.smp.ffIssueFn)
		}
	case trace.KindData:
		c.ffTouchD(ev)
	case trace.KindSwitch:
		c.stats.Switches++
		if c.cfg.FlushRASOnSwitch {
			c.ras.Flush()
		}
		if c.attr != nil {
			c.attr.leaveQuery()
		}
	case trace.KindQueryTag:
		if c.attr != nil {
			c.attr.enterQuery(uint64(ev.Addr))
		}
	}
}

// ffTouchI is fetchLine without timing: it keeps L1I/L2 contents and
// the miss counters moving, charging no stalls and using no ring. The
// per-fetch prefetcher hook (OnFetch — next-N-line issue in every
// prefetcher here) is deliberately not run: it is stateless, it costs
// several cache probes per fetched line, and its short reach is
// re-established within the first handful of detailed warm-up events.
// The stateful call-graph hooks (OnCall/OnReturn) do run, in ffEvent.
func (c *CPU) ffTouchI(addr isa.Addr, n int) {
	line := isa.LineAddr(addr)
	for covered := isa.LinesCovered(addr, isa.InstrRangeBytes(n)); covered > 0; covered-- {
		cl := cache.Line(isa.Line(line))
		c.stats.ILineAccesses++
		if _, hit := c.l1i.Access(cl); !hit {
			c.stats.ICacheMisses++
			if _, h2 := c.l2.Access(cl); !h2 {
				c.stats.L2Misses++
				c.l2.Insert(cl, struct{}{})
			}
			c.stats.L2Accesses++
			c.insertL1I(line, lineMeta{})
		}
		line += isa.LineBytes
	}
}

// ffTouchD is data without timing.
func (c *CPU) ffTouchD(ev *trace.Event) {
	line := isa.LineAddr(ev.Addr)
	for covered := isa.LinesCovered(ev.Addr, int(ev.N)); covered > 0; covered-- {
		cl := cache.Line(isa.Line(line))
		c.stats.DLineAccesses++
		if meta, hit := c.l1d.Access(cl); hit {
			if ev.Taken { // write
				meta.dirty = true
			}
		} else {
			c.stats.DCacheMisses++
			if _, h2 := c.l2.Access(cl); !h2 {
				c.stats.L2Misses++
				c.l2.Insert(cl, struct{}{})
			}
			c.stats.L2Accesses++
			c.l1d.Insert(cl, dataMeta{dirty: ev.Taken})
		}
		line += isa.LineBytes
	}
}

// ffIssue is the functional-mode prefetch sink: the line lands in the
// caches immediately (the transfer would complete within the warmed
// stretch) with no ring entry and no effectiveness accounting — the
// fill is marked already-used so it can neither claim a PrefHit nor be
// booked Useless, keeping the Figure 8/9 counters a detailed-span
// measurement.
func (c *CPU) ffIssue(req prefetch.Request) {
	line := isa.LineAddr(req.Addr)
	cl := cache.Line(isa.Line(line))
	if c.l1i.Contains(cl) {
		return
	}
	if _, hit := c.l2.Access(cl); !hit {
		c.stats.L2Misses++
		c.l2.Insert(cl, struct{}{})
	}
	c.stats.L2Accesses++
	if c.cfg.PrefetchIntoL2Only {
		return
	}
	c.l1i.Insert(cl, lineMeta{prefetched: true, used: true})
}

// finish derives the whole-run estimates from the closed windows.
// total is the exact whole-run instruction count (counted in every
// tier). cycles is the detailed-span cycle count, used verbatim when
// the replay never opened a window — i.e. the stream was simulated in
// full detail, so the "estimate" is the measurement itself.
func (s *sampler) finish(total units.Instrs, cycles units.Cycles) *SampleStats {
	ss := &SampleStats{
		Windows:             len(s.windows),
		SkippedEvents:       s.skippedEvents,
		SkippedInstrs:       s.skippedInstrs,
		FastForwardedEvents: s.ffEvents,
		WarmupEvents:        s.warmEvents,
		MeasuredEvents:      s.measuredEvents,
	}
	if len(s.windows) == 0 {
		//cgplint:ignore cyclesafe zero-window fallback: the whole stream ran in full detail, so the estimate is the measurement
		ss.EstCycles = units.EstCycles(int64(cycles))
		ss.Degenerate = true
		return ss
	}
	cyc := sample.EstimateRate(s.windows, func(w sample.Window) float64 { return float64(w.Cycles) })
	miss := sample.EstimateRate(s.windows, func(w sample.Window) float64 { return float64(w.Misses) })
	ss.EstCycles = units.EstCycles(cyc.Scale(total))
	ss.CycleRelCI = cyc.RelCI
	ss.EstIMisses = miss.Scale(total)
	ss.MissRelCI = miss.RelCI
	ss.Degenerate = cyc.Degenerate
	return ss
}
