package cpu

import (
	"math/bits"

	"cgp/internal/branch"
	"cgp/internal/cache"
	"cgp/internal/isa"
	"cgp/internal/prefetch"
	"cgp/internal/trace"
	"cgp/internal/units"
)

// lineMeta is the per-L1I-line bookkeeping used for the prefetch
// effectiveness accounting of Figures 8 and 9.
type lineMeta struct {
	prefetched bool
	used       bool
	portion    prefetch.Portion
	// issuedAt / issuer / qissuer record when the prefetch was
	// launched, which attribution row triggered it, and which query row
	// (-1 outside any tagged query). They are only meaningful for
	// prefetched lines on a CPU with attribution enabled; otherwise
	// they stay zero.
	issuedAt units.Cycles
	issuer   int32
	qissuer  int32
}

// dataMeta is the per-L1D-line state.
type dataMeta struct {
	dirty bool
}

// CPU consumes a trace and accounts execution cycles. It implements
// trace.Consumer and trace.BatchConsumer.
type CPU struct {
	cfg Config

	l1i *cache.Cache[lineMeta]
	l1d *cache.Cache[dataMeta]
	l2  *cache.Cache[struct{}]

	bp  *branch.Predictor
	ras *branch.RAS
	pf  prefetch.Prefetcher

	// issueFn is the prefetch sink handed to the prefetcher on every
	// fetch/call/return. It is bound once here: creating the method
	// value at each call site would heap-allocate a closure per event.
	issueFn prefetch.Issue

	cycle      units.Cycles
	instrCarry units.Instrs
	busFreeAt  units.Cycles

	// fetchShift is log2(FetchWidth) when the width is a power of two
	// (-1 otherwise), so addThroughput's per-event div/mod reduces to a
	// shift and mask.
	fetchShift int

	// fifo is the prefetch queue: value-typed ring + line index (see
	// inflight.go).
	fifo inflightRing

	// Loop events carry their own branch accounting (the predictor is
	// not consulted per compressed iteration).
	loopBranches    int64
	loopMispredicts int64

	// attr is the per-function attribution collector, nil unless
	// EnableAttribution was called. Every hook below is guarded by the
	// nil check, so the disabled case costs one predictable branch.
	attr *attribution

	// smp is the sampled-simulation state (see sample.go), nil unless
	// EnableSampling was called. Full-detail replay pays one predictable
	// nil check per batch.
	smp *sampler

	stats Stats
}

var (
	_ trace.Consumer      = (*CPU)(nil)
	_ trace.BatchConsumer = (*CPU)(nil)
)

// New builds a CPU with the given prefetcher (nil means no prefetching).
func New(cfg Config, pf prefetch.Prefetcher) *CPU {
	if pf == nil {
		pf = prefetch.None{}
	}
	c := &CPU{
		cfg: cfg,
		l1i: cache.New[lineMeta](cfg.L1I),
		l1d: cache.New[dataMeta](cfg.L1D),
		l2:  cache.New[struct{}](cfg.L2),
		bp:  branch.NewPredictor(cfg.BranchEntries),
		ras: branch.NewRAS(cfg.RASDepth),
		pf:  pf,
	}
	c.issueFn = c.issue
	c.fifo.init()
	c.fetchShift = -1
	if w := cfg.FetchWidth; w > 0 && w&(w-1) == 0 {
		c.fetchShift = bits.TrailingZeros(uint(w))
	}
	return c
}

// Prefetcher returns the attached prefetcher.
func (c *CPU) Prefetcher() prefetch.Prefetcher { return c.pf }

// EnableAttribution turns on per-function prefetch attribution. Call
// it before consuming events; the extra accounting shows up as
// Stats.Attribution and changes no other counter, so an
// attribution-enabled run stays comparable (and, minus the table,
// identical) to a plain one. Attribution is deliberately not part of
// Config: enabling it must not change config fingerprints or cache
// keys.
func (c *CPU) EnableAttribution() {
	if c.attr == nil {
		c.attr = newAttribution()
	}
}

// AttributionEnabled reports whether EnableAttribution was called.
func (c *CPU) AttributionEnabled() bool { return c.attr != nil }

// Cycle returns the current cycle count.
func (c *CPU) Cycle() units.Cycles { return c.cycle }

// Event implements trace.Consumer. It is the simulator's per-event
// entry point: the whole subtree below it (cache scans, predictor
// updates, prefetcher hooks, ring bookkeeping) must stay free of heap
// allocation, which allocfree verifies statically and
// TestEventLoopDoesNotAllocate re-checks at runtime.
//
//cgplint:hotpath
func (c *CPU) Event(ev trace.Event) {
	if c.smp != nil {
		c.sampledEvent(ev)
		return
	}
	c.event(ev)
}

// EventBatch implements trace.BatchConsumer: the batched replay path
// hands over a decoded chunk at a time, so the per-event dynamic
// dispatch of the Consumer interface is paid once per batch. Like
// Event it anchors the zero-alloc hot path.
//
//cgplint:hotpath
func (c *CPU) EventBatch(evs []trace.Event) {
	if s := c.smp; s != nil {
		switch s.mode {
		case trace.SpanFunctionalWarm:
			s.ffEvents += int64(len(evs))
			for i := range evs {
				c.ffEvent(&evs[i])
			}
			return
		case trace.SpanMeasure:
			s.measuredEvents += int64(len(evs))
		default:
			s.warmEvents += int64(len(evs))
		}
	}
	for i := range evs {
		c.event(evs[i])
	}
}

func (c *CPU) event(ev trace.Event) {
	switch ev.Kind {
	case trace.KindRun:
		c.run(ev.Addr, int(ev.N))
	case trace.KindLoop:
		c.loop(ev.Addr, int(ev.N), int(ev.Iters))
	case trace.KindBranch:
		c.branch(ev)
	case trace.KindCall:
		c.call(ev)
	case trace.KindReturn:
		c.ret(ev)
	case trace.KindData:
		c.data(ev)
	case trace.KindSwitch:
		c.contextSwitch()
	case trace.KindQueryTag:
		// A tagged live capture scopes the batch that follows to one
		// query's trace ID; without attribution the tag is inert.
		if c.attr != nil {
			c.attr.enterQuery(uint64(ev.Addr))
		}
	}
}

// Finish flushes residual accounting (the useless-prefetch count of
// lines still resident or in flight is left uncounted, matching the
// end-of-run truncation any simulator has) and returns the statistics.
func (c *CPU) Finish() *Stats {
	s := c.stats
	s.Cycles = c.cycle
	s.L1IStats = c.l1i.Stats()
	s.L1DStats = c.l1d.Stats()
	s.L2Stats = c.l2.Stats()
	s.Branches = c.bp.Lookups() + c.loopBranches
	s.BranchMispredicts = c.bp.Mispredicts() + c.loopMispredicts
	s.Returns = c.ras.Pops()
	s.RASMispredicts = c.ras.Mispredicts()
	if c.attr != nil {
		s.Attribution = c.attr.sorted()
		if len(c.attr.qrows) > 0 {
			s.QueryAttr = c.attr.qsorted()
		}
	}
	if c.smp != nil {
		c.closeWindow()
		s.Sample = c.smp.finish(s.Instructions, c.cycle)
	}
	return &s
}

// ---- instruction side ----

// run fetches n sequential instructions starting at addr.
func (c *CPU) run(addr isa.Addr, n int) {
	if n <= 0 {
		return
	}
	c.stats.Instructions += units.Instrs(n)
	c.addThroughput(n)
	if c.cfg.PerfectICache {
		return
	}
	line := isa.LineAddr(addr)
	for covered := isa.LinesCovered(addr, isa.InstrRangeBytes(n)); covered > 0; covered-- {
		c.fetchLine(line)
		line += isa.LineBytes
	}
}

// loop fetches a body of bodyInstr instructions once and accounts for
// iters executions of it (the lines stay resident across iterations).
func (c *CPU) loop(addr isa.Addr, bodyInstr, iters int) {
	if bodyInstr <= 0 || iters <= 0 {
		return
	}
	c.stats.Instructions += units.Instrs(int64(bodyInstr) * int64(iters))
	c.addThroughput(bodyInstr * iters)
	// One fetch redirect per iteration's back edge; the predictor locks
	// onto the loop after warmup and mispredicts the exit.
	c.cycle += units.Cycles(iters) * c.cfg.TakenBranchBubble
	c.loopBranches += int64(iters)
	c.loopMispredicts++ // the loop-exit mispredict
	c.cycle += c.cfg.MispredictPenalty
	if c.cfg.PerfectICache {
		return
	}
	line := isa.LineAddr(addr)
	for covered := isa.LinesCovered(addr, isa.InstrRangeBytes(bodyInstr)); covered > 0; covered-- {
		c.fetchLine(line)
		line += isa.LineBytes
	}
}

// addThroughput charges fetch/issue bandwidth for n instructions. The
// fetch width is the instrs-per-cycle ratio that crosses instruction
// counts into cycles, hence the explicit int64 step. The carry is never
// negative, so the power-of-two shift/mask equals the div/mod exactly.
func (c *CPU) addThroughput(n int) {
	c.instrCarry += units.Instrs(n)
	if s := c.fetchShift; s >= 0 {
		c.cycle += units.Cycles(int64(c.instrCarry) >> s)
		c.instrCarry &= units.Instrs(int64(1)<<s - 1)
		return
	}
	c.cycle += units.Cycles(int64(c.instrCarry) / int64(c.cfg.FetchWidth))
	c.instrCarry %= units.Instrs(c.cfg.FetchWidth)
}

// fetchLine performs one demand instruction fetch of a full line,
// charging any miss stall, and triggers the prefetcher.
func (c *CPU) fetchLine(line isa.Addr) {
	c.stats.ILineAccesses++
	if c.attr != nil {
		c.attr.cur().LineFetches++
		if q := c.attr.qcur(); q != nil {
			q.LineFetches++
		}
	}
	// drainCompleted's guard, hoisted by hand: the whole wrapper is past
	// the inlining budget, and this runs on every fetched line.
	if c.fifo.head != c.fifo.tail {
		if inf := &c.fifo.buf[c.fifo.head&uint64(len(c.fifo.buf)-1)]; inf.done || inf.readyAt <= c.cycle {
			c.drainLoop()
		}
	}
	if meta, hit := c.l1i.Access(cache.Line(isa.Line(line))); hit {
		if meta.prefetched && !meta.used {
			meta.used = true
			c.portionStats(meta.portion).PrefHits++
			if c.attr != nil {
				row := c.attr.cur()
				row.PrefHits++
				row.observeTimeliness(c.cycle - meta.issuedAt)
				c.attr.at(meta.issuer).Useful++
				if q := c.attr.qcur(); q != nil {
					q.PrefHits++
					q.observeTimeliness(c.cycle - meta.issuedAt)
				}
				if q := c.attr.qat(meta.qissuer); q != nil {
					q.Useful++
				}
			}
		}
	} else if inf := c.fifo.lookup(line); inf != nil {
		// The line is enroute from L2: a delayed hit (Figure 8).
		wait := inf.readyAt - c.cycle
		if wait < 0 {
			wait = 0
		}
		c.cycle += wait
		c.stats.IMissStallCycles += wait
		c.portionStats(inf.portion).DelayedHits++
		if c.attr != nil {
			row := c.attr.cur()
			row.DelayedHits++
			row.observeTimeliness(c.cycle - inf.issuedAt)
			c.attr.at(inf.issuer).Useful++
			if q := c.attr.qcur(); q != nil {
				q.DelayedHits++
				q.observeTimeliness(c.cycle - inf.issuedAt)
			}
			if q := c.attr.qat(inf.qissuer); q != nil {
				q.Useful++
			}
		}
		// The entry stays queued (the bus transfer already happened)
		// but is marked consumed and unindexed so drain skips it.
		done := lineMeta{prefetched: true, used: true, portion: inf.portion,
			issuedAt: inf.issuedAt, issuer: inf.issuer, qissuer: inf.qissuer}
		inf.done = true
		c.fifo.remove(line)
		c.insertL1I(line, done)
	} else {
		// Full miss: go to L2 through the shared FIFO.
		c.stats.ICacheMisses++
		if c.attr != nil {
			c.attr.cur().Misses++
			if q := c.attr.qcur(); q != nil {
				q.Misses++
			}
		}
		lat := c.l2DemandAccess(line)
		c.cycle += lat
		c.stats.IMissStallCycles += lat
		c.insertL1I(line, lineMeta{})
	}
	c.pf.OnFetch(line, c.issueFn)
}

// insertL1I fills a line and settles the useless-prefetch accounting for
// the victim.
func (c *CPU) insertL1I(line isa.Addr, meta lineMeta) {
	ev, had := c.l1i.Insert(cache.Line(isa.Line(line)), meta)
	if had && ev.Payload.prefetched && !ev.Payload.used {
		c.portionStats(ev.Payload.portion).Useless++
		if c.attr != nil {
			c.attr.at(ev.Payload.issuer).Useless++
			if q := c.attr.qat(ev.Payload.qissuer); q != nil {
				q.Useless++
			}
		}
	}
}

// issue is the prefetch.Issue sink handed to the prefetcher.
func (c *CPU) issue(req prefetch.Request) {
	line := isa.LineAddr(req.Addr)
	ps := c.portionStats(req.Portion)
	if c.l1i.Contains(cache.Line(isa.Line(line))) {
		ps.Squashed++
		if c.attr != nil {
			c.attr.cur().Squashed++
			if q := c.attr.qcur(); q != nil {
				q.Squashed++
			}
		}
		return
	}
	if c.fifo.lookup(line) != nil {
		ps.Squashed++
		if c.attr != nil {
			c.attr.cur().Squashed++
			if q := c.attr.qcur(); q != nil {
				q.Squashed++
			}
		}
		return
	}
	ps.Issued++
	var issuer int32
	qissuer := int32(-1)
	if c.attr != nil {
		c.attr.cur().Issued++
		issuer = c.attr.curIdx
		qissuer = c.attr.curQ
		if q := c.attr.qcur(); q != nil {
			q.Issued++
		}
	}
	if c.cfg.PrefetchIntoL2Only {
		// The line is staged in L2 only: warm the L2 (paying the memory
		// trip if absent) but never fill L1I, so the later demand fetch
		// still costs an L2 hit.
		c.l2LineAccess(line)
		return
	}
	lat := c.l2LineAccess(line)
	c.fifo.push(inflight{line: line, readyAt: c.cycle + lat, portion: req.Portion,
		issuedAt: c.cycle, issuer: issuer, qissuer: qissuer})
}

// drainCompleted fills L1I with prefetches whose data has arrived. It
// runs on every fetched line, so the nothing-to-do case — empty FIFO,
// or an oldest entry still in transit — stays small enough to inline
// into fetchLine; the actual drain loop is split out.
func (c *CPU) drainCompleted() {
	if c.fifo.head == c.fifo.tail {
		return
	}
	inf := &c.fifo.buf[c.fifo.head&uint64(len(c.fifo.buf)-1)]
	if !inf.done && inf.readyAt > c.cycle {
		return
	}
	c.drainLoop()
}

// drainLoop pops every front entry whose data has arrived. The ring
// frees slots as entries drain, so — unlike the old slice queue, which
// needed periodic compaction — a run whose queue never fully empties
// still holds only the live window.
func (c *CPU) drainLoop() {
	for !c.fifo.empty() {
		inf := c.fifo.front()
		if !inf.done && inf.readyAt > c.cycle {
			break
		}
		line, done := inf.line, inf.done
		meta := lineMeta{prefetched: true, portion: inf.portion,
			issuedAt: inf.issuedAt, issuer: inf.issuer, qissuer: inf.qissuer}
		c.fifo.popFront()
		if done {
			// Already consumed as a delayed hit (and unindexed then).
			continue
		}
		c.fifo.remove(line)
		c.insertL1I(line, meta)
	}
}

// l2DemandAccess is l2LineAccess for demand misses: identical unless
// the DemandPriority ablation is on, in which case the demand request
// bypasses queued prefetches (it still occupies the bus afterwards).
func (c *CPU) l2DemandAccess(line isa.Addr) units.Cycles {
	if !c.cfg.DemandPriority {
		return c.l2LineAccess(line)
	}
	c.stats.L2Accesses++
	c.busFreeAt += c.cfg.BusCyclesPerLine
	ready := c.cycle + c.cfg.L2Latency
	if _, hit := c.l2.Access(cache.Line(isa.Line(line))); !hit {
		c.stats.L2Misses++
		ready += c.cfg.MemLatency
		c.l2.Insert(cache.Line(isa.Line(line)), struct{}{})
	}
	return ready - c.cycle
}

// l2LineAccess models one line transfer over the shared L1<->L2
// interface, returning the latency from now until the line arrives.
// Requests serialize on the bus in FIFO order with no demand priority.
func (c *CPU) l2LineAccess(line isa.Addr) units.Cycles {
	start := c.cycle
	if c.busFreeAt > start {
		start = c.busFreeAt
	}
	c.busFreeAt = start + c.cfg.BusCyclesPerLine
	c.stats.L2Accesses++
	ready := start + c.cfg.L2Latency
	if _, hit := c.l2.Access(cache.Line(isa.Line(line))); !hit {
		c.stats.L2Misses++
		ready += c.cfg.MemLatency
		c.l2.Insert(cache.Line(isa.Line(line)), struct{}{})
	}
	return ready - c.cycle
}

func (c *CPU) portionStats(p prefetch.Portion) *PrefetchStats {
	if p == prefetch.PortionCGHC {
		return &c.stats.CGHC
	}
	return &c.stats.NL
}

// ---- control flow ----

func (c *CPU) branch(ev trace.Event) {
	correct := c.bp.Predict(ev.Addr, ev.Taken)
	if !correct {
		c.cycle += c.cfg.MispredictPenalty
	}
	if ev.Taken {
		c.cycle += c.cfg.TakenBranchBubble
	}
}

func (c *CPU) call(ev trace.Event) {
	c.stats.Calls++
	if c.attr != nil {
		// The callee becomes the executing function before the
		// prefetcher runs, so prefetches triggered by this call (CGP's
		// callee-entry prefetch) attribute to the function being
		// entered — the function whose lines they fetch.
		c.attr.enter(ev.Target)
	}
	c.ras.Push(branch.RASEntry{
		ReturnAddr:  ev.Addr + isa.InstrBytes,
		CallerStart: ev.CallerStart,
	})
	c.cycle += c.cfg.TakenBranchBubble
	if !c.cfg.PerfectICache {
		c.pf.OnCall(ev.Target, ev.CallerStart, c.issueFn)
	}
}

func (c *CPU) ret(ev trace.Event) {
	if c.attr != nil {
		// The *actual* caller from the trace, not the RAS prediction:
		// attribution follows real control flow even when the RAS is
		// wrong (the prediction only decides what CGP looks up).
		c.attr.enter(ev.CallerStart)
	}
	pred, ok := c.ras.Pop()
	if !c.ras.RecordOutcome(pred, ok, ev.Target) {
		c.cycle += c.cfg.MispredictPenalty
	}
	c.cycle += c.cfg.TakenBranchBubble
	if !c.cfg.PerfectICache {
		// CGP sees the *predicted* caller start from the modified RAS:
		// a wrong RAS entry sends the CGHC lookup to the wrong tag.
		var predCaller isa.Addr
		if ok {
			predCaller = pred.CallerStart
		}
		c.pf.OnReturn(predCaller, ev.Addr, c.issueFn)
	}
}

func (c *CPU) contextSwitch() {
	c.stats.Switches++
	c.cycle += c.cfg.SwitchPenalty
	if c.cfg.FlushRASOnSwitch {
		c.ras.Flush()
	}
	if c.attr != nil {
		// The next batch belongs to no query until its own tag arrives:
		// an untagged batch must not smear onto the previous query.
		c.attr.leaveQuery()
	}
}

// ---- data side ----

func (c *CPU) data(ev trace.Event) {
	line := isa.LineAddr(ev.Addr)
	for covered := isa.LinesCovered(ev.Addr, int(ev.N)); covered > 0; covered-- {
		c.stats.DLineAccesses++
		if meta, hit := c.l1d.Access(cache.Line(isa.Line(line))); hit {
			if ev.Taken { // write
				meta.dirty = true
			}
		} else {
			c.stats.DCacheMisses++
			lat := c.l2DemandAccess(line)
			stall := units.Cycles(float64(lat) * c.cfg.DataStallFactor)
			c.cycle += stall
			evicted, had := c.l1d.Insert(cache.Line(isa.Line(line)), dataMeta{dirty: ev.Taken})
			if had && evicted.Payload.dirty {
				// Writeback occupies the bus but does not stall the core.
				c.busFreeAt += c.cfg.BusCyclesPerLine
				c.stats.L2Accesses++
			}
		}
		line += isa.LineBytes
	}
}
