package campaign

import (
	"fmt"
	"sort"
)

// Partition splits jobs into n shards for n workers.
//
// The unit of placement is not the job but the recording group: all
// cells sharing a (workload, layout) pair replay one recorded trace, so
// splitting a group across shards would record the same trace in every
// shard that holds a piece — pure duplicated wall-clock. Quantum cells
// group by quantum value instead (each is its own sub-scope workload).
//
// Placement is greedy least-loaded over groups sorted by descending
// size: the classic LPT heuristic, which keeps the largest shard within
// a small factor of optimal without needing per-cell cost estimates.
// All ties break deterministically (group key, then shard index), so
// the same jobs and n always produce the same shards — a worker that is
// killed and respawned gets handed exactly its outstanding jobs back,
// and the chaos tests can reason about which shard owns which cell.
//
// Shards may come back empty when there are fewer groups than workers;
// the coordinator simply does not spawn a worker for an empty shard.
func Partition(jobs []JobSpec, n int) [][]JobSpec {
	if n <= 0 {
		n = 1
	}
	type group struct {
		key  string
		jobs []JobSpec
	}
	index := map[string]int{}
	var groups []group
	for _, j := range jobs {
		k := groupKey(j)
		i, ok := index[k]
		if !ok {
			i = len(groups)
			index[k] = i
			groups = append(groups, group{key: k})
		}
		groups[i].jobs = append(groups[i].jobs, j)
	}
	sort.SliceStable(groups, func(a, b int) bool {
		if len(groups[a].jobs) != len(groups[b].jobs) {
			return len(groups[a].jobs) > len(groups[b].jobs)
		}
		return groups[a].key < groups[b].key
	})
	shards := make([][]JobSpec, n)
	loads := make([]int, n)
	for _, g := range groups {
		best := 0
		for i := 1; i < n; i++ {
			if loads[i] < loads[best] {
				best = i
			}
		}
		shards[best] = append(shards[best], g.jobs...)
		loads[best] += len(g.jobs)
	}
	return shards
}

// groupKey is the recording-affinity key: cells with equal keys share a
// recorded trace (or, for quantum cells, a sub-runner scope).
func groupKey(j JobSpec) string {
	if j.Quantum != 0 {
		return fmt.Sprintf("quantum|%d", j.Quantum)
	}
	return fmt.Sprintf("%s|layout%d", j.Workload, j.Config.Layout)
}
