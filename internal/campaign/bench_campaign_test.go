package campaign

// Campaign scaling benchmark and regression guard.
//
// TestCampaignScalingBench (CGP_CAMPAIGN_BENCH=1) measures allfigures
// campaign wall-clock at 1, 2 and 4 workers and writes the results to
// BENCH_campaign.json at the repo root. Every worker process is pinned
// to one scheduling unit (GOMAXPROCS=1 in its environment, Workers=1
// in its spec), so the arms compare distribution across processes and
// nothing else — an unpinned 1-worker arm would parallelize internally
// and hide the scaling being measured. The file records the host's
// core count next to the timings: on a single-core host the honest
// 2-worker "speedup" is ~1.0x, and only a multi-core host (like the CI
// sharding job's runner) can exercise the real scaling bar.
//
// TestCampaignScalingGuard (CGP_BENCH_GUARD=1, alongside the root
// package's TestKernelThroughputGuard) re-measures the 1- and 2-worker
// arms live and asserts by core count: with 2+ cores, 2 workers must
// reach 80% of the 1.7x target (1.36x); with 1 core, scaling is
// unmeasurable, so it asserts the distribution overhead is bounded
// instead (2 workers no more than 30% slower than 1).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"testing"
	"time"

	"cgp"
)

const (
	// campaignScalingTarget is the acceptance bar: 2 workers on a
	// multi-core host should cut allfigures wall-clock by ≥1.7x.
	campaignScalingTarget = 1.7
	// campaignGuardTolerance mirrors guardRegressionTolerance in the
	// root package: only a loss of more than 20% of the target fails.
	campaignGuardTolerance = 0.80
	// campaignOverheadCeiling bounds what the protocol, process spawns
	// and record streaming may cost when parallelism cannot pay for
	// them (single-core hosts): 2 workers at most 30% slower than 1.
	campaignOverheadCeiling = 1.30
)

// benchWiscN is the benchmark's workload scale; CGP_CAMPAIGN_BENCH_WISCN
// overrides it.
func benchWiscN(t *testing.T) int {
	if s := os.Getenv("CGP_CAMPAIGN_BENCH_WISCN"); s != "" {
		var n int
		if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n <= 0 {
			t.Fatalf("CGP_CAMPAIGN_BENCH_WISCN=%q: not a positive integer", s)
		}
		return n
	}
	return 1000
}

// benchJobs expands allfigures at the benchmark scale.
func benchJobs(t *testing.T, wiscN int) []JobSpec {
	t.Helper()
	opts := testOptions("")
	opts.DB.WiscN = wiscN
	m, err := LoadManifest(ManifestAllFigures)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := Jobs(cgp.NewRunner(opts), m)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// measureCampaign runs the campaign once with n pinned workers and
// returns its wall-clock time.
func measureCampaign(t *testing.T, n, wiscN int, jobs []JobSpec) time.Duration {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	spec := testSpec(dir)
	spec.DB.WiscN = wiscN
	spec.Workers = 1
	co := New(Options{
		Workers: n,
		Spec:    spec,
		Command: func(ctx context.Context, slot int) (*exec.Cmd, error) {
			cmd := exec.CommandContext(ctx, exe)
			cmd.Env = append(os.Environ(), "CGP_CAMPAIGN_WORKER=serve", "GOMAXPROCS=1")
			cmd.Stderr = io.Discard
			return cmd, nil
		},
	})
	t0 := time.Now()
	st, err := co.Run(context.Background(), jobs)
	took := time.Since(t0)
	if err != nil {
		t.Fatalf("%d workers: %v", n, err)
	}
	if len(st.Failed) > 0 {
		t.Fatalf("%d workers: failed jobs: %v", n, st.Failed)
	}
	t.Logf("%d workers: %v (%d records imported, %d duplicate)", n, took.Round(time.Millisecond), st.Imported, st.Duplicates)
	return took
}

func TestCampaignScalingBench(t *testing.T) {
	if os.Getenv("CGP_CAMPAIGN_BENCH") == "" {
		t.Skip("set CGP_CAMPAIGN_BENCH=1 to run the campaign scaling benchmark")
	}
	wiscN := benchWiscN(t)
	jobs := benchJobs(t, wiscN)
	type arm struct {
		Workers int     `json:"workers"`
		Seconds float64 `json:"seconds"`
	}
	var arms []arm
	for _, n := range []int{1, 2, 4} {
		arms = append(arms, arm{Workers: n, Seconds: measureCampaign(t, n, wiscN, jobs).Seconds()})
	}
	out := struct {
		Bench     string  `json:"bench"`
		Campaign  string  `json:"campaign"`
		WiscN     int     `json:"wisc_n"`
		Jobs      int     `json:"jobs"`
		Cores     int     `json:"cores"`
		Arms      []arm   `json:"arms"`
		Speedup2W float64 `json:"speedup_2w"`
		Speedup4W float64 `json:"speedup_4w"`
	}{
		Bench:     "campaign_scaling",
		Campaign:  ManifestAllFigures,
		WiscN:     wiscN,
		Jobs:      len(jobs),
		Cores:     runtime.NumCPU(),
		Arms:      arms,
		Speedup2W: arms[0].Seconds / arms[1].Seconds,
		Speedup4W: arms[0].Seconds / arms[2].Seconds,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_campaign.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("campaign scaling on %d cores: 2w %.2fx, 4w %.2fx — wrote BENCH_campaign.json",
		out.Cores, out.Speedup2W, out.Speedup4W)
}

func TestCampaignScalingGuard(t *testing.T) {
	if os.Getenv("CGP_BENCH_GUARD") == "" {
		t.Skip("set CGP_BENCH_GUARD=1 to run the campaign scaling guard")
	}
	wiscN := benchWiscN(t)
	jobs := benchJobs(t, wiscN)
	d1 := measureCampaign(t, 1, wiscN, jobs)
	d2 := measureCampaign(t, 2, wiscN, jobs)
	speedup := d1.Seconds() / d2.Seconds()
	cores := runtime.NumCPU()
	if cores >= 2 {
		floor := campaignGuardTolerance * campaignScalingTarget
		t.Logf("2-worker speedup %.2fx on %d cores (1w %v, 2w %v); floor %.2fx",
			speedup, cores, d1.Round(time.Millisecond), d2.Round(time.Millisecond), floor)
		if speedup < floor {
			t.Errorf("campaign scaling regressed: 2 workers give %.2fx over 1, below %.2fx (80%% of the %.1fx target)",
				speedup, floor, campaignScalingTarget)
		}
		return
	}
	// One core: parallel speedup is physically unmeasurable, so guard
	// the other side of the trade — distribution must stay cheap.
	t.Logf("single core: 2-worker run %.2fx of 1-worker (%v vs %v); overhead ceiling %.2fx",
		d2.Seconds()/d1.Seconds(), d2.Round(time.Millisecond), d1.Round(time.Millisecond), campaignOverheadCeiling)
	if d2.Seconds() > campaignOverheadCeiling*d1.Seconds() {
		t.Errorf("distribution overhead regressed: 2-worker campaign took %v, more than %.0f%% over the 1-worker %v",
			d2.Round(time.Millisecond), 100*(campaignOverheadCeiling-1), d1.Round(time.Millisecond))
	}
}
