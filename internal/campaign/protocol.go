// Package campaign distributes a figure campaign across worker
// processes (DESIGN.md §15).
//
// A Coordinator expands a campaign Manifest into JobSpecs, partitions
// them into shards, and drives N workers over a line-oriented JSON
// protocol on the workers' stdin/stdout. Each worker is a thin wrapper
// over the root package's Runner: it simulates its shard against a
// shared checkpoint directory and streams every settled cell back as a
// checkpoint record in wire format. The coordinator imports records
// first-writer-wins, so duplicated work (stall reassignment, a killed
// worker's partial shard re-run) is harmless. The merge step is the
// ordinary report path re-run over the populated checkpoint directory —
// simulations are deterministic and any missing cell recomputes
// identically in-process, which is why merged reports are byte-identical
// regardless of shard count, worker deaths or reassignment.
//
// The transport is deliberately just an io.Reader/io.Writer pair plus a
// process handle: the local exec transport here spawns
// `experiments -worker` subprocesses, and an SSH or container transport
// only needs to supply a different exec.Cmd.
package campaign

import (
	"encoding/json"
	"io"
	"sync"

	"cgp"
	"cgp/internal/sample"
)

// Message types, coordinator→worker and worker→coordinator. Unknown
// types are ignored by both sides for forward compatibility.
const (
	// msgInit (c→w) is the first message on a worker's stdin: its
	// identity and the RunnerSpec to build its Runner from.
	msgInit = "init"
	// msgJobs (c→w) assigns a batch of jobs. The worker runs the batch
	// and answers with one msgBatchDone.
	msgJobs = "jobs"
	// msgHello (w→c) acknowledges init.
	msgHello = "hello"
	// msgHeartbeat (w→c) is emitted periodically so a transport can
	// distinguish a slow worker from a dead pipe. The coordinator's
	// stall detector deliberately ignores heartbeats: a wedged
	// simulation still heartbeats, so only records, forwarded log
	// events and batch completions count as progress.
	msgHeartbeat = "heartbeat"
	// msgRecord (w→c) streams one settled cell's checkpoint record in
	// wire format (cgp.ImportRecord's input).
	msgRecord = "record"
	// msgEvent (w→c) forwards one JSONL run-log entry from the
	// worker's Runner, worker id already stamped.
	msgEvent = "event"
	// msgBatchDone (w→c) reports a finished batch: confirmed job IDs
	// and per-job deterministic failures.
	msgBatchDone = "batchdone"
	// msgError (w→c) reports a fatal worker-side error before exit.
	msgError = "error"
)

// Message is one frame of the coordinator↔worker protocol, a JSONL
// union keyed by Type; unused fields stay empty on the wire.
type Message struct {
	Type   string `json:"type"`
	Worker string `json:"worker,omitempty"`
	// Spec accompanies init.
	Spec *RunnerSpec `json:"spec,omitempty"`
	// Jobs accompanies a jobs batch.
	Jobs []JobSpec `json:"jobs,omitempty"`
	// Key and Record accompany record.
	Key    string          `json:"key,omitempty"`
	Record json.RawMessage `json:"record,omitempty"`
	// Entry accompanies event: one run-log JSONL line.
	Entry json.RawMessage `json:"entry,omitempty"`
	// Done and Failed accompany batchdone.
	Done   []int        `json:"done,omitempty"`
	Failed []JobFailure `json:"failed,omitempty"`
	// Error accompanies error.
	Error string `json:"error,omitempty"`
}

// JobSpec is one campaign cell in wire form: the workload by name (the
// worker reifies it at its own scale) plus the full config. IDs are
// assigned by Jobs and are unique within a campaign; the coordinator
// tracks completion by ID, never by position.
type JobSpec struct {
	ID       int        `json:"id"`
	Workload string     `json:"workload"`
	Config   cgp.Config `json:"config"`
	// Quantum, when nonzero, marks an abl-quantum sub-scope cell run
	// via RunQuantumCell instead of the ordinary Run path.
	Quantum int `json:"quantum,omitempty"`
}

// Key returns the cell's identity key (CampaignCell.Key's rule).
func (j JobSpec) Key() string {
	return cgp.CampaignCell{Workload: j.Workload, Config: j.Config, Quantum: j.Quantum}.Key()
}

// JobFailure is one job's deterministic failure: the same inputs would
// fail again, so the coordinator records it instead of reassigning.
type JobFailure struct {
	ID    int    `json:"id"`
	Error string `json:"error"`
}

// RunnerSpec is the serializable subset of cgp.RunnerOptions a worker
// needs to reproduce the coordinator's runner: everything that affects
// results, scopes or keys. Process-local options (Obs, OnRecord, Log)
// are installed by Serve itself.
type RunnerSpec struct {
	// Worker is the id assigned by the coordinator ("w1".."wN"),
	// stamped on the worker's run-log entries and spans.
	Worker         string        `json:"worker"`
	DB             cgp.DBOptions `json:"db"`
	Seed           int64         `json:"seed"`
	Workers        int           `json:"workers,omitempty"`
	NoRecord       bool          `json:"no_record,omitempty"`
	CheckpointDir  string        `json:"checkpoint_dir"`
	Attribution    bool          `json:"attribution,omitempty"`
	Sampling       sample.Config `json:"sampling,omitempty"`
	SampledFigures []string      `json:"sampled_figures,omitempty"`
}

// Options expands the spec into RunnerOptions; the caller fills the
// process-local fields (Obs, OnRecord, Log, Verbose).
func (s RunnerSpec) Options() cgp.RunnerOptions {
	return cgp.RunnerOptions{
		DB:             s.DB,
		Seed:           s.Seed,
		Workers:        s.Workers,
		NoRecord:       s.NoRecord,
		CheckpointDir:  s.CheckpointDir,
		Attribution:    s.Attribution,
		Sampling:       s.Sampling,
		SampledFigures: s.SampledFigures,
	}
}

// safeEncoder serializes concurrent JSONL frames onto one writer: the
// worker's record hook, forwarded log lines and the main loop all write
// through it.
type safeEncoder struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

func newSafeEncoder(w io.Writer) *safeEncoder {
	return &safeEncoder{enc: json.NewEncoder(w)}
}

// send encodes one frame. Errors are sticky: after the peer goes away
// every later send is a cheap no-op and the first error is kept.
func (s *safeEncoder) send(m Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.enc.Encode(m)
	return s.err
}
