package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"cgp"
	"cgp/internal/obs"
)

// heartbeatInterval paces msgHeartbeat frames. Heartbeats prove the
// pipe, not progress: the coordinator's stall detector ignores them.
const heartbeatInterval = 500 * time.Millisecond

// Serve runs the worker side of the protocol: read an init frame from
// in, build a Runner per its spec, then run job batches until in
// reaches EOF (the coordinator closing our stdin is the normal
// shutdown). Every settled cell streams back as a record frame the
// moment its checkpoint settles, and the Runner's run-log entries are
// forwarded as event frames with this worker's id stamped — the
// coordinator folds both into its own artifacts as they arrive, so a
// worker killed mid-shard loses only its in-flight cells.
//
// logf receives progress lines for the worker's stderr; nil disables.
func Serve(ctx context.Context, in io.Reader, out io.Writer, logf func(format string, args ...any)) error {
	dec := json.NewDecoder(in)
	var init Message
	if err := dec.Decode(&init); err != nil {
		return fmt.Errorf("campaign: worker: read init: %w", err)
	}
	if init.Type != msgInit || init.Spec == nil {
		return fmt.Errorf("campaign: worker: expected %s frame, got %q", msgInit, init.Type)
	}
	spec := *init.Spec
	id := spec.Worker
	if id == "" {
		id = obs.DefaultWorker
	}
	enc := newSafeEncoder(out)

	o := obs.New().SetWorker(id)
	o.AttachLog(&eventForwarder{enc: enc, worker: id})
	opts := spec.Options()
	opts.Obs = o
	if logf != nil {
		opts.Verbose = true
		opts.Log = logf
	}
	opts.OnRecord = func(key string, record []byte) {
		// send ignores errors: a vanished coordinator surfaces as EOF
		// on the next read, and records are already on disk anyway.
		_ = enc.send(Message{Type: msgRecord, Worker: id, Key: key, Record: record})
	}
	r := cgp.NewRunner(opts)

	if err := enc.send(Message{Type: msgHello, Worker: id}); err != nil {
		return fmt.Errorf("campaign: worker %s: hello: %w", id, err)
	}
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		t := time.NewTicker(heartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				_ = enc.send(Message{Type: msgHeartbeat, Worker: id})
			case <-hbStop:
				return
			}
		}
	}()

	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("campaign: worker %s: read: %w", id, err)
		}
		if m.Type != msgJobs {
			continue // forward compatibility
		}
		done, failed := runJobs(ctx, r, m.Jobs)
		_ = enc.send(Message{Type: msgBatchDone, Worker: id, Done: done, Failed: failed})
		if err := ctx.Err(); err != nil {
			return err
		}
	}
}

// runJobs executes one batch: regular cells go through RunAll (so the
// shard gets the Runner's full parallelism and singleflight
// coalescing), quantum cells run their sub-scope path afterwards.
// Failures are deterministic facts about the cell, reported per job.
func runJobs(ctx context.Context, r *cgp.Runner, specs []JobSpec) (done []int, failed []JobFailure) {
	var regular []JobSpec
	var jobs []cgp.Job
	var quantum []JobSpec
	for _, js := range specs {
		if js.Quantum != 0 {
			quantum = append(quantum, js)
			continue
		}
		w, err := r.WorkloadByName(js.Workload)
		if err != nil {
			failed = append(failed, JobFailure{ID: js.ID, Error: err.Error()})
			continue
		}
		regular = append(regular, js)
		jobs = append(jobs, cgp.Job{Workload: w, Config: js.Config})
	}
	results, err := r.RunAll(ctx, jobs)
	jobErrs := map[int]string{}
	var camp *cgp.CampaignError
	if errors.As(err, &camp) {
		for _, je := range camp.Jobs {
			jobErrs[je.Index] = je.Error()
		}
	}
	for i, js := range regular {
		if results[i] != nil {
			done = append(done, js.ID)
			continue
		}
		msg := jobErrs[i]
		if msg == "" {
			msg = fmt.Sprintf("job not run: %v", err)
		}
		failed = append(failed, JobFailure{ID: js.ID, Error: msg})
	}
	for _, js := range quantum {
		if _, err := r.RunQuantumCell(ctx, js.Quantum); err != nil {
			failed = append(failed, JobFailure{ID: js.ID, Error: err.Error()})
			continue
		}
		done = append(done, js.ID)
	}
	return done, failed
}

// eventForwarder adapts the worker's run log (JSONL lines) onto event
// frames. RunLog writes one complete line per Write call, so no
// buffering or splitting is needed; the line is copied because the
// encoder may retain it past the call.
type eventForwarder struct {
	enc    *safeEncoder
	worker string
}

func (f *eventForwarder) Write(p []byte) (int, error) {
	line := bytes.TrimRight(p, "\n")
	entry := json.RawMessage(append([]byte(nil), line...))
	_ = f.enc.send(Message{Type: msgEvent, Worker: f.worker, Entry: entry})
	return len(p), nil
}
