package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"cgp"
)

// Manifest names the slice of the campaign a run covers: a set of
// figure IDs. An empty Figures list means everything CampaignCells
// enumerates.
type Manifest struct {
	Name    string   `json:"name,omitempty"`
	Figures []string `json:"figures,omitempty"`
}

// Built-in manifest names accepted by LoadManifest (and the
// experiments -campaign flag).
const (
	// ManifestAllFigures covers every figure and ablation.
	ManifestAllFigures = "allfigures"
	// ManifestPaper covers the paper's figures 4-10 and §5.6.
	ManifestPaper = "paper"
	// ManifestExtensions covers the ablation studies.
	ManifestExtensions = "extensions"
)

// paperFigures and extensionFigures mirror AllFigures' and
// ExtensionFigures' generator lists; TestManifestCoverage keeps them
// honest against CampaignCells.
var (
	paperFigures     = []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "sec5.6"}
	extensionFigures = []string{"abl-ways", "abl-slots", "abl-policy", "abl-swcgp", "abl-degree", "abl-quantum"}
)

// LoadManifest resolves a -campaign argument: a built-in name (empty
// means allfigures), or "@path" naming a JSON manifest file.
func LoadManifest(arg string) (*Manifest, error) {
	switch arg {
	case "", ManifestAllFigures:
		return &Manifest{Name: ManifestAllFigures}, nil
	case ManifestPaper:
		return &Manifest{Name: ManifestPaper, Figures: paperFigures}, nil
	case ManifestExtensions:
		return &Manifest{Name: ManifestExtensions, Figures: extensionFigures}, nil
	}
	if path, ok := strings.CutPrefix(arg, "@"); ok {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("campaign: manifest: %w", err)
		}
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("campaign: manifest %s: %w", path, err)
		}
		if m.Name == "" {
			m.Name = path
		}
		return &m, nil
	}
	return nil, fmt.Errorf("campaign: unknown manifest %q (want %s, %s, %s or @file.json)",
		arg, ManifestAllFigures, ManifestPaper, ManifestExtensions)
}

// Jobs expands a manifest into the campaign's job list: CampaignCells
// filtered to the manifest's figures, deduplicated by cell key (a cell
// shared between figures runs once), with sequential IDs in enumeration
// order. The same runner options and manifest always yield the same
// list — partitioning and the byte-identity guarantee both lean on
// that.
func Jobs(r *cgp.Runner, m *Manifest) ([]JobSpec, error) {
	want := map[string]bool{}
	for _, f := range m.Figures {
		want[f] = true
	}
	known := map[string]bool{}
	seen := map[string]bool{}
	var jobs []JobSpec
	for _, c := range r.CampaignCells() {
		known[c.Figure] = true
		if len(want) > 0 && !want[c.Figure] {
			continue
		}
		k := c.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		jobs = append(jobs, JobSpec{ID: len(jobs), Workload: c.Workload, Config: c.Config, Quantum: c.Quantum})
	}
	for f := range want {
		if !known[f] {
			return nil, fmt.Errorf("campaign: manifest %s: unknown figure %q", m.Name, f)
		}
	}
	return jobs, nil
}
