package campaign

// Distributed-campaign tests. The coordinator needs real worker
// processes; rather than building a separate binary, the test binary
// re-executes itself: TestMain checks CGP_CAMPAIGN_WORKER and becomes
// a protocol worker ("serve" — the real Serve loop; "hold" — a stub
// that heartbeats but never makes progress, for the stall tests)
// instead of running tests. The root-package test binary cannot host
// this (its TestMain lives in package cgp, which internal/campaign
// cannot import back), which is why every spawning test lives here.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"reflect"
	"sync"
	"testing"
	"time"

	"cgp"
	"cgp/internal/faultinject"
	"cgp/internal/obs"
	"cgp/internal/sample"
)

func TestMain(m *testing.M) {
	switch os.Getenv("CGP_CAMPAIGN_WORKER") {
	case "serve":
		if err := Serve(context.Background(), os.Stdin, os.Stdout, nil); err != nil {
			fmt.Fprintln(os.Stderr, "campaign worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	case "hold":
		holdWorker()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// holdWorker speaks just enough protocol to look alive — hello, then
// heartbeats — but never runs a job: the deterministic stand-in for a
// wedged worker.
func holdWorker() {
	dec := json.NewDecoder(os.Stdin)
	var init Message
	if err := dec.Decode(&init); err != nil {
		return
	}
	id := ""
	if init.Spec != nil {
		id = init.Spec.Worker
	}
	enc := newSafeEncoder(os.Stdout)
	_ = enc.send(Message{Type: msgHello, Worker: id})
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				_ = enc.send(Message{Type: msgHeartbeat, Worker: id})
			case <-stop:
				return
			}
		}
	}()
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			return // stdin EOF: the coordinator's shutdown signal
		}
	}
}

// Tiny scale keeps the spawning tests fast; fig7+fig8 share cells, so
// the manifest also exercises cross-figure dedup.
const testWiscN = 400

func testOptions(dir string) cgp.RunnerOptions {
	return cgp.RunnerOptions{
		DB:            cgp.DBOptions{WiscN: testWiscN, Seed: 1},
		Seed:          1,
		CheckpointDir: dir,
	}
}

func testSpec(dir string) RunnerSpec {
	return RunnerSpec{
		DB:            cgp.DBOptions{WiscN: testWiscN, Seed: 1},
		Seed:          1,
		CheckpointDir: dir,
	}
}

var testManifest = &Manifest{Name: "test", Figures: []string{"fig7", "fig8"}}

// renderTestFigures produces the deterministic report slice the
// byte-identity tests compare: the markdown of the manifest's figures.
func renderTestFigures(ctx context.Context, r *cgp.Runner) (string, error) {
	f7, err := r.Figure7(ctx)
	if err != nil {
		return "", err
	}
	f8, err := r.Figure8(ctx)
	if err != nil {
		return "", err
	}
	return f7.Markdown() + f8.Markdown(), nil
}

// baseline computes the unsharded reference once per test binary: the
// figure markdown from a plain in-process runner, plus the campaign's
// job list.
var (
	baseOnce sync.Once
	baseMD   string
	baseJobs []JobSpec
	baseErr  error
)

func baseline(t *testing.T) (string, []JobSpec) {
	t.Helper()
	baseOnce.Do(func() {
		ctx := context.Background()
		r := cgp.NewRunner(testOptions(""))
		baseMD, baseErr = renderTestFigures(ctx, r)
		if baseErr != nil {
			return
		}
		baseJobs, baseErr = Jobs(r, testManifest)
	})
	if baseErr != nil {
		t.Fatal(baseErr)
	}
	return baseMD, baseJobs
}

// testCommand re-executes the test binary as a worker; mode picks the
// per-slot worker personality.
func testCommand(t *testing.T, mode func(slot int) string) func(context.Context, int) (*exec.Cmd, error) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return func(ctx context.Context, slot int) (*exec.Cmd, error) {
		cmd := exec.CommandContext(ctx, exe)
		cmd.Env = append(os.Environ(), "CGP_CAMPAIGN_WORKER="+mode(slot))
		cmd.Stderr = io.Discard
		return cmd, nil
	}
}

func serveAll(int) string { return "serve" }

// merge renders the figures from a checkpoint directory a campaign
// populated and asserts nothing was re-simulated: byte-identity must
// come from the imported records, not from silent recomputation.
func merge(t *testing.T, dir string) string {
	t.Helper()
	opts := testOptions(dir)
	o := obs.New()
	opts.Obs = o
	md, err := renderTestFigures(context.Background(), cgp.NewRunner(opts))
	if err != nil {
		t.Fatal(err)
	}
	if n := o.Progress.Snapshot().Counts[string(obs.JobExecuted)]; n != 0 {
		t.Errorf("merge re-simulated %d cells; every cell should resume from an imported record", n)
	}
	return md
}

func TestShardedCampaignByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	want, jobs := baseline(t)
	for _, n := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			dir := t.TempDir()
			co := New(Options{
				Workers: n,
				Spec:    testSpec(dir),
				Command: testCommand(t, serveAll),
			})
			st, err := co.Run(context.Background(), jobs)
			if err != nil {
				t.Fatalf("coordinator: %v", err)
			}
			if len(st.Failed) > 0 {
				t.Fatalf("failed jobs: %v", st.Failed)
			}
			if st.Imported != len(jobs) {
				t.Errorf("imported %d records, want %d (one per job)", st.Imported, len(jobs))
			}
			if got := merge(t, dir); got != want {
				t.Errorf("merged figures differ from unsharded baseline at %d shards\n--- unsharded ---\n%s\n--- merged ---\n%s", n, want, got)
			}
		})
	}
}

// TestWorkerKillRejoin is the cross-process half of the chaos suite:
// SIGKILL a worker at an exact point in the record stream
// (faultinject.FireAt makes the timing deterministic), let the
// coordinator respawn it, and require the merged figures to stay
// byte-identical to the unsharded run.
func TestWorkerKillRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	want, jobs := baseline(t)
	dir := t.TempDir()
	var co *Coordinator
	kill := faultinject.FireAt(3, func() { co.KillWorker(WorkerID(0)) })
	co = New(Options{
		Workers:       2,
		Spec:          testSpec(dir),
		Command:       testCommand(t, serveAll),
		RestartBudget: 2,
		OnRecord:      func(string, string) { kill() },
	})
	st, err := co.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if st.Restarts == 0 {
		t.Error("expected at least one worker restart after the kill")
	}
	if len(st.Failed) > 0 {
		t.Fatalf("failed jobs: %v", st.Failed)
	}
	if got := merge(t, dir); got != want {
		t.Error("merged figures differ from unsharded baseline after worker kill/rejoin")
	}
}

// TestSlowWorkerReassigned wedges one slot with the hold stub (alive,
// heartbeating, never progressing) and requires the coordinator's
// stall detector to shadow its jobs onto the healthy worker — and the
// merge to stay byte-identical.
func TestSlowWorkerReassigned(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	want, jobs := baseline(t)
	dir := t.TempDir()
	co := New(Options{
		Workers: 2,
		Spec:    testSpec(dir),
		Command: testCommand(t, func(slot int) string {
			if slot == 1 {
				return "hold"
			}
			return "serve"
		}),
		StallTimeout: 500 * time.Millisecond,
	})
	st, err := co.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if st.Reassigned == 0 {
		t.Error("expected the stalled worker's jobs to be reassigned")
	}
	if len(st.Failed) > 0 {
		t.Fatalf("failed jobs: %v", st.Failed)
	}
	if got := merge(t, dir); got != want {
		t.Error("merged figures differ from unsharded baseline after stall reassignment")
	}
}

func TestPartitionDeterministicAndComplete(t *testing.T) {
	var jobs []JobSpec
	id := 0
	for _, w := range []string{"wisc-large-1", "wisc-large-2", "tpch-lite", "gzip"} {
		for _, layout := range []cgp.Layout{cgp.LayoutO5, cgp.LayoutOM} {
			for d := 1; d <= 3; d++ {
				jobs = append(jobs, JobSpec{ID: id, Workload: w,
					Config: cgp.Config{Layout: layout, Prefetcher: cgp.PrefCGP, Degree: d}})
				id++
			}
		}
	}
	jobs = append(jobs, JobSpec{ID: id, Workload: "wisc-large-2", Quantum: 7,
		Config: cgp.Config{Layout: cgp.LayoutOM}})

	for _, n := range []int{1, 2, 3, 16} {
		shards := Partition(jobs, n)
		if len(shards) != n {
			t.Fatalf("n=%d: got %d shards", n, len(shards))
		}
		if !reflect.DeepEqual(shards, Partition(jobs, n)) {
			t.Errorf("n=%d: partition is not deterministic", n)
		}
		seen := map[int]int{}
		group := map[string]int{}
		for s, shard := range shards {
			for _, j := range shard {
				seen[j.ID]++
				if prev, ok := group[groupKey(j)]; ok && prev != s {
					t.Errorf("n=%d: group %s split across shards %d and %d", n, groupKey(j), prev, s)
				}
				group[groupKey(j)] = s
			}
		}
		for _, j := range jobs {
			if seen[j.ID] != 1 {
				t.Errorf("n=%d: job %d placed %d times", n, j.ID, seen[j.ID])
			}
		}
	}
	// More shards than groups: the extras stay empty rather than
	// splitting a recording group.
	shards := Partition(jobs[:3], 5)
	nonEmpty := 0
	for _, s := range shards {
		if len(s) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Errorf("3 same-group jobs over 5 shards: %d non-empty shards, want 1", nonEmpty)
	}
}

// TestProtocolConfigRoundTrip guards the wire format's load-bearing
// property: a config surviving the JSON trip keeps its fingerprint, so
// a worker's checkpoint keys match the coordinator's enumeration.
func TestProtocolConfigRoundTrip(t *testing.T) {
	js := JobSpec{
		ID:       7,
		Workload: "wisc-large-2",
		Config: cgp.Config{
			Layout: cgp.LayoutOM, Prefetcher: cgp.PrefCGP, Degree: 4,
			CGHC:           cgp.CGHCConfig{L1Bytes: 1024, Ways: 2, Slots: 4},
			DemandPriority: true,
			Sampling:       sample.Config{PeriodEvents: 1000, WindowEvents: 100, Seed: 9},
		},
	}
	data, err := json.Marshal(Message{Type: msgJobs, Jobs: []JobSpec{js}})
	if err != nil {
		t.Fatal(err)
	}
	var m Message
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Jobs) != 1 {
		t.Fatalf("got %d jobs", len(m.Jobs))
	}
	if got, want := m.Jobs[0].Key(), js.Key(); got != want {
		t.Errorf("config fingerprint changed across the wire:\n got %s\nwant %s", got, want)
	}
}

func TestManifestsAndJobs(t *testing.T) {
	r := cgp.NewRunner(testOptions(""))
	for _, name := range []string{"", ManifestAllFigures, ManifestPaper, ManifestExtensions} {
		m, err := LoadManifest(name)
		if err != nil {
			t.Fatalf("LoadManifest(%q): %v", name, err)
		}
		jobs, err := Jobs(r, m)
		if err != nil {
			t.Fatalf("Jobs(%q): %v", name, err)
		}
		if len(jobs) == 0 {
			t.Fatalf("manifest %q expands to no jobs", name)
		}
		keys := map[string]bool{}
		for i, j := range jobs {
			if j.ID != i {
				t.Fatalf("manifest %q: job %d has ID %d", name, i, j.ID)
			}
			if keys[j.Key()] {
				t.Errorf("manifest %q: duplicate cell key %s", name, j.Key())
			}
			keys[j.Key()] = true
		}
	}
	all, _ := LoadManifest(ManifestAllFigures)
	paper, _ := LoadManifest(ManifestPaper)
	exts, _ := LoadManifest(ManifestExtensions)
	allJobs, _ := Jobs(r, all)
	paperJobs, _ := Jobs(r, paper)
	extJobs, _ := Jobs(r, exts)
	if len(paperJobs) >= len(allJobs) || len(extJobs) >= len(allJobs) {
		t.Errorf("manifest sizes: paper %d, extensions %d, allfigures %d — subsets should be smaller",
			len(paperJobs), len(extJobs), len(allJobs))
	}

	if _, err := LoadManifest("nonsense"); err == nil {
		t.Error("LoadManifest accepted an unknown name")
	}
	if _, err := Jobs(r, &Manifest{Name: "bad", Figures: []string{"fig99"}}); err == nil {
		t.Error("Jobs accepted an unknown figure")
	}

	path := t.TempDir() + "/m.json"
	if err := os.WriteFile(path, []byte(`{"figures":["fig7"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadManifest("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := Jobs(r, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 || len(jobs) >= len(allJobs) {
		t.Errorf("@file manifest: %d jobs (allfigures %d)", len(jobs), len(allJobs))
	}
}
