package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cgp"
	"cgp/internal/obs"
)

// Options configures a Coordinator.
type Options struct {
	// Workers is the number of worker slots (and shards). Required.
	Workers int
	// Spec is the runner spec shipped to every worker; its
	// CheckpointDir is where streamed records are imported. Required.
	Spec RunnerSpec
	// Command builds the worker process for a slot — typically
	// `experiments -worker` via exec.CommandContext. The coordinator
	// owns the process's stdin/stdout; the hook may wire stderr and
	// environment. Required.
	Command func(ctx context.Context, slot int) (*exec.Cmd, error)
	// Log receives progress lines; nil disables.
	Log func(format string, args ...any)
	// Obs, when set, folds forwarded worker run-log entries into its
	// run log, tracks per-worker lifetime spans and counts imports,
	// restarts and reassignments in the wall registry.
	Obs *obs.Observability
	// StallTimeout is how long a worker may go without progress
	// (records, events or batch completions — heartbeats do not count)
	// before its outstanding jobs are shadowed onto another worker.
	// 0 means the default (2m); negative disables stall detection.
	StallTimeout time.Duration
	// ShutdownTimeout bounds the wait for workers to exit after their
	// stdin closes. 0 means the default (10s).
	ShutdownTimeout time.Duration
	// RestartBudget is how many times a slot's dead worker is
	// respawned before its jobs are reassigned to surviving workers.
	// 0 means the default (2); negative disables respawns.
	RestartBudget int
	// OnRecord, when set, observes every imported record (test hook:
	// the chaos suite kills workers at exact record counts).
	OnRecord func(worker, key string)
}

// Stats summarizes a coordinator run.
type Stats struct {
	// Jobs is the campaign size.
	Jobs int
	// Imported and Duplicates count streamed records by first-writer
	// outcome: a duplicate means another worker (or an earlier
	// generation of the same slot) already delivered the cell.
	Imported   int
	Duplicates int
	// Failed lists jobs that failed deterministically on a worker.
	Failed []JobFailure
	// Restarts counts dead workers respawned onto their slot.
	Restarts int
	// Reassigned counts jobs handed to a different worker after a
	// death past the restart budget or a stall.
	Reassigned int
}

// Coordinator drives a sharded campaign over worker processes. One
// Run per Coordinator.
type Coordinator struct {
	o Options

	// mu guards procs; everything else is touched only by Run's loop.
	mu    sync.Mutex
	procs []*proc
}

// proc is one live worker process (a slot's current generation).
type proc struct {
	slot  int
	id    string
	cmd   *exec.Cmd
	stdin io.WriteCloser
	enc   *json.Encoder
	span  *obs.Span
	// outstanding is the jobs assigned to this worker and not yet
	// settled; only Run's loop touches it.
	outstanding map[int]JobSpec
	// progress resets the watchdog (capacity 1, non-blocking sends).
	progress chan struct{}
	// stopped is closed when the proc's exit is processed.
	stopped chan struct{}
	// readerDone is closed when the stdout reader finishes, so the
	// waiter never calls cmd.Wait while frames are still in flight
	// (Wait closes the stdout pipe).
	readerDone chan struct{}
}

const (
	evMsg = iota
	evExit
	evStall
)

// event is one occurrence delivered to Run's loop: a decoded frame, a
// process exit, or a watchdog stall.
type event struct {
	kind int
	p    *proc
	msg  Message
	err  error
}

// WorkerID names a slot's worker: "w1".."wN". Stable across respawns,
// so the run log attributes a restarted shard to the same id.
func WorkerID(slot int) string { return fmt.Sprintf("w%d", slot+1) }

// WorkerIDs lists the ids of an n-worker campaign, for run-log
// validation whitelists.
func WorkerIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = WorkerID(i)
	}
	return ids
}

// New returns a Coordinator with defaults applied.
func New(o Options) *Coordinator {
	if o.StallTimeout == 0 {
		o.StallTimeout = 2 * time.Minute
	}
	if o.ShutdownTimeout == 0 {
		o.ShutdownTimeout = 10 * time.Second
	}
	if o.RestartBudget == 0 {
		o.RestartBudget = 2
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	return &Coordinator{o: o}
}

// KillWorker SIGKILLs the named worker's current process, returning
// whether it was found alive. The coordinator reacts exactly as it
// would to any other worker death (respawn, then reassignment); the
// chaos suite uses this to prove the campaign survives.
func (c *Coordinator) KillWorker(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.procs {
		if p != nil && p.id == id && p.cmd.Process != nil {
			_ = p.cmd.Process.Kill()
			return true
		}
	}
	return false
}

// Run partitions jobs into shards, drives the workers, and returns
// once every job is settled (imported, or recorded as a deterministic
// failure) or no path forward remains. An error means some jobs were
// not settled — the caller's merge step recomputes those cells
// in-process, so a coordinator error degrades wall-clock, never
// results.
func (c *Coordinator) Run(ctx context.Context, jobs []JobSpec) (Stats, error) {
	st := Stats{Jobs: len(jobs)}
	if c.o.Workers <= 0 || c.o.Command == nil || c.o.Spec.CheckpointDir == "" {
		return st, errors.New("campaign: coordinator needs Workers, Command and a checkpoint dir")
	}
	pending := make(map[int]JobSpec, len(jobs))
	for _, j := range jobs {
		if _, dup := pending[j.ID]; dup {
			return st, fmt.Errorf("campaign: duplicate job id %d", j.ID)
		}
		pending[j.ID] = j
	}
	if len(jobs) == 0 {
		return st, nil
	}

	// done releases every per-proc goroutine when Run returns.
	done := make(chan struct{})
	defer close(done)
	events := make(chan event, 64)
	restarts := make([]int, c.o.Workers)

	shards := Partition(jobs, c.o.Workers)
	c.mu.Lock()
	c.procs = make([]*proc, c.o.Workers)
	c.mu.Unlock()
	for slot, shard := range shards {
		if len(shard) == 0 {
			continue
		}
		p, err := c.spawn(ctx, slot, shard, events, done)
		if err != nil {
			c.killAll()
			return st, err
		}
		c.setProc(slot, p)
	}

	for len(pending) > 0 {
		select {
		case ev := <-events:
			var err error
			switch ev.kind {
			case evMsg:
				c.handleMsg(ev.p, ev.msg, pending, &st)
			case evExit:
				err = c.handleExit(ctx, ev.p, ev.err, pending, &st, restarts, events, done)
			case evStall:
				c.handleStall(ev.p, pending, &st)
			}
			if err != nil {
				c.killAll()
				return st, err
			}
		case <-ctx.Done():
			c.killAll()
			return st, ctx.Err()
		}
	}

	c.shutdown(ctx, events, pending, &st)
	return st, nil
}

// spawn starts a worker on slot with an initial batch and wires its
// reader, waiter and watchdog goroutines.
func (c *Coordinator) spawn(ctx context.Context, slot int, batch []JobSpec, events chan<- event, done <-chan struct{}) (*proc, error) {
	cmd, err := c.o.Command(ctx, slot)
	if err != nil {
		return nil, fmt.Errorf("campaign: worker command: %w", err)
	}
	id := WorkerID(slot)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("campaign: %s stdin: %w", id, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("campaign: %s stdout: %w", id, err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("campaign: start %s: %w", id, err)
	}
	p := &proc{
		slot:        slot,
		id:          id,
		cmd:         cmd,
		stdin:       stdin,
		enc:         json.NewEncoder(stdin),
		outstanding: make(map[int]JobSpec, len(batch)),
		progress:    make(chan struct{}, 1),
		stopped:     make(chan struct{}),
		readerDone:  make(chan struct{}),
	}
	if o := c.o.Obs; o != nil {
		p.span = o.Span("worker "+id, "campaign").Arg("worker", id)
	}
	spec := c.o.Spec
	spec.Worker = id
	// Each slot checkpoints into its own subdirectory: the streamed
	// records the coordinator imports into the merge dir are then the
	// only way results cross processes — exactly the situation of a
	// remote transport with no shared filesystem — while a respawned
	// worker still resumes from its slot's surviving checkpoints.
	spec.CheckpointDir = filepath.Join(c.o.Spec.CheckpointDir, "shard-"+id)
	if err := p.send(Message{Type: msgInit, Spec: &spec}); err != nil {
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("campaign: init %s: %w", id, err)
	}
	if err := p.assign(batch); err != nil {
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("campaign: assign %s: %w", id, err)
	}
	c.o.Log("campaign: %s started with %d jobs", id, len(batch))

	go func() {
		defer close(p.readerDone)
		dec := json.NewDecoder(stdout)
		for {
			var m Message
			if err := dec.Decode(&m); err != nil {
				return // exit surfaces through the waiter
			}
			select {
			case events <- event{kind: evMsg, p: p, msg: m}:
			case <-done:
				return
			}
		}
	}()
	go func() {
		<-p.readerDone
		err := cmd.Wait()
		select {
		case events <- event{kind: evExit, p: p, err: err}:
		case <-done:
		}
	}()
	if c.o.StallTimeout > 0 {
		stall := c.o.StallTimeout
		go func() {
			for {
				select {
				case <-p.progress:
				case <-time.After(stall):
					select {
					case events <- event{kind: evStall, p: p}:
					case <-p.stopped:
					case <-done:
					}
					return // one stall report per generation
				case <-p.stopped:
					return
				case <-done:
					return
				}
			}
		}()
	}
	return p, nil
}

// handleMsg processes one worker frame.
func (c *Coordinator) handleMsg(p *proc, m Message, pending map[int]JobSpec, st *Stats) {
	switch m.Type {
	case msgRecord:
		p.noteProgress()
		key, wrote, err := cgp.ImportRecord(c.o.Spec.CheckpointDir, m.Record)
		if err != nil {
			// A bad record is not fatal: the cell recomputes at merge.
			c.wallIncr("campaign_records_rejected", 1)
			c.o.Log("campaign: %s: rejected record: %v", p.id, err)
			return
		}
		if wrote {
			st.Imported++
			c.wallIncr("campaign_records_imported", 1)
		} else {
			st.Duplicates++
			c.wallIncr("campaign_records_duplicate", 1)
		}
		if c.o.OnRecord != nil {
			c.o.OnRecord(p.id, key)
		}
	case msgEvent:
		p.noteProgress()
		var e obs.RunLogEntry
		if err := json.Unmarshal(m.Entry, &e); err != nil {
			c.o.Log("campaign: %s: bad event: %v", p.id, err)
			return
		}
		if o := c.o.Obs; o != nil {
			o.Log.EmitEntry(e)
			o.Progress.Update(obs.JobState(e.Event), e.Workload, e.Config)
		}
	case msgBatchDone:
		p.noteProgress()
		for _, id := range m.Done {
			delete(pending, id)
			delete(p.outstanding, id)
		}
		for _, f := range m.Failed {
			if _, open := pending[f.ID]; open {
				delete(pending, f.ID)
				st.Failed = append(st.Failed, f)
				c.wallIncr("campaign_jobs_failed", 1)
				c.o.Log("campaign: %s: job %d failed: %s", p.id, f.ID, f.Error)
			}
			delete(p.outstanding, f.ID)
		}
	case msgError:
		c.o.Log("campaign: %s: %s", p.id, m.Error)
	}
}

// handleExit reacts to a worker process exiting. A current-generation
// worker with outstanding jobs is respawned onto its slot while the
// slot's restart budget lasts; past it, the jobs move to the
// least-loaded surviving worker. First-writer-wins imports make the
// partial overlap (records the dead worker already streamed) free.
func (c *Coordinator) handleExit(ctx context.Context, p *proc, exitErr error, pending map[int]JobSpec, st *Stats, restarts []int, events chan<- event, done <-chan struct{}) error {
	close(p.stopped)
	p.span.End()
	c.mu.Lock()
	current := c.procs[p.slot] == p
	if current {
		c.procs[p.slot] = nil
	}
	c.mu.Unlock()
	if !current {
		return nil // an earlier generation of a respawned slot
	}
	out := p.openJobs(pending)
	if len(out) == 0 {
		if len(pending) > 0 {
			c.o.Log("campaign: %s exited (%v)", p.id, exitErr)
		}
		return nil
	}
	c.o.Log("campaign: %s exited with %d jobs outstanding (%v)", p.id, len(out), exitErr)
	if restarts[p.slot] < c.o.RestartBudget {
		restarts[p.slot]++
		np, err := c.spawn(ctx, p.slot, out, events, done)
		if err == nil {
			c.setProc(p.slot, np)
			st.Restarts++
			c.wallIncr("campaign_worker_restarts", 1)
			return nil
		}
		c.o.Log("campaign: respawn %s: %v", p.id, err)
	}
	t := c.leastLoaded(nil)
	if t == nil {
		return fmt.Errorf("campaign: no workers left with %d jobs unsettled", len(pending))
	}
	if err := t.assign(out); err != nil {
		// t is dying too; its own exit event will move the jobs on.
		c.o.Log("campaign: reassign to %s: %v", t.id, err)
		return nil
	}
	st.Reassigned += len(out)
	c.wallIncr("campaign_jobs_reassigned", int64(len(out)))
	c.o.Log("campaign: reassigned %d jobs from %s to %s", len(out), p.id, t.id)
	return nil
}

// handleStall shadows a silent worker's open jobs onto another worker.
// The original keeps running — if it was merely slow, the first of the
// two copies to deliver each record wins and the other import is a
// counted duplicate.
func (c *Coordinator) handleStall(p *proc, pending map[int]JobSpec, st *Stats) {
	c.mu.Lock()
	current := c.procs[p.slot] == p
	c.mu.Unlock()
	if !current {
		return
	}
	out := p.openJobs(pending)
	if len(out) == 0 {
		return
	}
	t := c.leastLoaded(p)
	if t == nil {
		c.o.Log("campaign: %s stalled; no other worker to shadow its %d jobs", p.id, len(out))
		return
	}
	if err := t.assign(out); err != nil {
		c.o.Log("campaign: shadow to %s: %v", t.id, err)
		return
	}
	st.Reassigned += len(out)
	c.wallIncr("campaign_jobs_reassigned", int64(len(out)))
	c.o.Log("campaign: %s stalled; shadowed %d jobs onto %s", p.id, len(out), t.id)
}

// shutdown closes worker stdins (their EOF signal) and reaps exits,
// still importing any late records; stragglers are killed after
// ShutdownTimeout.
func (c *Coordinator) shutdown(ctx context.Context, events <-chan event, pending map[int]JobSpec, st *Stats) {
	c.mu.Lock()
	var alive []*proc
	for _, p := range c.procs {
		if p != nil {
			alive = append(alive, p)
		}
	}
	c.mu.Unlock()
	for _, p := range alive {
		_ = p.stdin.Close()
	}
	remaining := len(alive)
	kill := time.After(c.o.ShutdownTimeout)
	for remaining > 0 {
		select {
		case ev := <-events:
			switch ev.kind {
			case evExit:
				close(ev.p.stopped)
				ev.p.span.End()
				c.setProc(ev.p.slot, nil)
				remaining--
			case evMsg:
				c.handleMsg(ev.p, ev.msg, pending, st)
			}
		case <-kill:
			c.o.Log("campaign: killing %d workers that ignored shutdown", remaining)
			c.killAll()
		case <-ctx.Done():
			c.killAll()
			return
		}
	}
}

func (c *Coordinator) setProc(slot int, p *proc) {
	c.mu.Lock()
	c.procs[slot] = p
	c.mu.Unlock()
}

// leastLoaded returns the live worker with the fewest open jobs,
// excluding except; ties break toward the lowest slot.
func (c *Coordinator) leastLoaded(except *proc) *proc {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *proc
	for _, p := range c.procs {
		if p == nil || p == except {
			continue
		}
		if best == nil || len(p.outstanding) < len(best.outstanding) {
			best = p
		}
	}
	return best
}

func (c *Coordinator) killAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.procs {
		if p != nil && p.cmd.Process != nil {
			_ = p.cmd.Process.Kill()
		}
	}
}

func (c *Coordinator) wallIncr(name string, n int64) {
	if o := c.o.Obs; o != nil {
		o.Wall.Incr(name, n)
	}
}

// send writes one frame to the worker's stdin (Run's loop is the only
// writer, so no lock).
func (p *proc) send(m Message) error {
	return p.enc.Encode(m)
}

// assign sends a jobs batch and tracks it as outstanding.
func (p *proc) assign(batch []JobSpec) error {
	if err := p.send(Message{Type: msgJobs, Jobs: batch}); err != nil {
		return err
	}
	for _, j := range batch {
		p.outstanding[j.ID] = j
	}
	return nil
}

// openJobs is the ID-ordered subset of outstanding still pending
// campaign-wide (jobs another worker already settled drop out).
func (p *proc) openJobs(pending map[int]JobSpec) []JobSpec {
	var out []JobSpec
	for id, j := range p.outstanding {
		if _, open := pending[id]; open {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// noteProgress resets the slot's watchdog.
func (p *proc) noteProgress() {
	select {
	case p.progress <- struct{}{}:
	default:
	}
}
