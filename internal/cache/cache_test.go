package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func cfg(size, assoc int) Config {
	return Config{Name: "test", SizeBytes: size, Assoc: assoc, LineBytes: 32}
}

func TestGeometry(t *testing.T) {
	c := New[struct{}](cfg(1024, 2))
	if c.Sets() != 16 {
		t.Errorf("sets = %d, want 16", c.Sets())
	}
	if c.Assoc() != 2 {
		t.Errorf("assoc = %d, want 2", c.Assoc())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []Config{
		{Name: "zero", SizeBytes: 0, Assoc: 1, LineBytes: 32},
		{Name: "nonpow2", SizeBytes: 96, Assoc: 1, LineBytes: 32}, // 3 sets
		{Name: "badassoc", SizeBytes: 1024, Assoc: 3, LineBytes: 32},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %v: expected panic", c)
				}
			}()
			New[struct{}](c)
		}()
	}
}

func TestHitMiss(t *testing.T) {
	c := New[int](cfg(1024, 2))
	if _, hit := c.Access(7); hit {
		t.Fatal("hit in empty cache")
	}
	c.Insert(7, 42)
	p, hit := c.Access(7)
	if !hit || *p != 42 {
		t.Fatalf("Access(7) = %v,%v; want 42,true", p, hit)
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2 accesses / 1 miss", st)
	}
}

func TestPayloadMutableInPlace(t *testing.T) {
	c := New[int](cfg(1024, 2))
	c.Insert(3, 1)
	p, _ := c.Access(3)
	*p = 99
	p2, _ := c.Access(3)
	if *p2 != 99 {
		t.Errorf("payload = %d, want 99", *p2)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-on-a-set: 2 ways, lines 0, 16, 32 share set 0 (16
	// sets).
	c := New[int](cfg(1024, 2))
	c.Insert(0, 0)
	c.Insert(16, 1)
	c.Access(0) // make line 16 the LRU way
	ev, had := c.Insert(32, 2)
	if !had || ev.Line != 16 {
		t.Fatalf("evicted %v (had=%v), want line 16", ev, had)
	}
	if _, hit := c.Probe(0); !hit {
		t.Error("line 0 should have survived")
	}
	if _, hit := c.Probe(32); !hit {
		t.Error("line 32 should be resident")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := New[int](cfg(1024, 2))
	c.Insert(0, 0)
	c.Insert(16, 1)
	// Probing 0 must NOT refresh it.
	c.Probe(0)
	c.Access(16) // 16 is now MRU regardless
	ev, had := c.Insert(32, 2)
	if !had || ev.Line != 0 {
		t.Fatalf("evicted %v, want line 0 (probe must not refresh LRU)", ev)
	}
	st := c.Stats()
	if st.Accesses != 1 {
		t.Errorf("probe counted as access: %+v", st)
	}
}

func TestInsertExistingReplacesInPlace(t *testing.T) {
	c := New[int](cfg(1024, 2))
	c.Insert(5, 1)
	ev, had := c.Insert(5, 2)
	if had {
		t.Fatalf("re-insert evicted %v", ev)
	}
	p, _ := c.Access(5)
	if *p != 2 {
		t.Errorf("payload = %d, want 2", *p)
	}
	if c.Resident() != 1 {
		t.Errorf("resident = %d, want 1", c.Resident())
	}
}

func TestInvalidateAll(t *testing.T) {
	c := New[int](cfg(1024, 2))
	for i := Line(0); i < 10; i++ {
		c.Insert(i, int(i))
	}
	c.InvalidateAll()
	if c.Resident() != 0 {
		t.Errorf("resident = %d after invalidate", c.Resident())
	}
}

func TestForEachDeterministic(t *testing.T) {
	c := New[int](cfg(1024, 2))
	for i := Line(0); i < 8; i++ {
		c.Insert(i, int(i))
	}
	var a, b []Line
	c.ForEach(func(l Line, _ *int) { a = append(a, l) })
	c.ForEach(func(l Line, _ *int) { b = append(b, l) })
	if len(a) != 8 {
		t.Fatalf("visited %d lines, want 8", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ForEach order not deterministic")
		}
	}
}

// TestInsertFillsFirstInvalidWay pins the victim-scan fix: while a set
// has invalid ways, Insert must fill the lowest-numbered one, never an
// invalid way found later in the scan. Physical placement is observable
// through ForEach's set-then-way order.
func TestInsertFillsFirstInvalidWay(t *testing.T) {
	c := New[int](cfg(2048, 4)) // 16 sets x 4 ways
	// Lines 0, 16, 32 share set 0; they must land in ways 0, 1, 2.
	c.Insert(0, 10)
	c.Insert(16, 11)
	c.Insert(32, 12)
	var got []Line
	c.ForEach(func(l Line, _ *int) { got = append(got, l) })
	want := []Line{0, 16, 32}
	if len(got) != len(want) {
		t.Fatalf("resident lines = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("way order = %v, want %v (first invalid way must win)", got, want)
		}
	}
}

// TestInvalidWayPreferredOverEviction is the LRU tie-break between an
// empty way and a stale valid way: as long as any way is invalid,
// Insert must fill it and evict nothing, no matter how old the valid
// ways are.
func TestInvalidWayPreferredOverEviction(t *testing.T) {
	c := New[int](cfg(2048, 4))
	c.Insert(0, 0)
	// Age line 0 far below any later activity.
	for i := 0; i < 50; i++ {
		c.Access(16)
	}
	if ev, had := c.Insert(16, 1); had {
		t.Fatalf("Insert(16) evicted %+v with invalid ways free", ev)
	}
	if ev, had := c.Insert(32, 2); had {
		t.Fatalf("Insert(32) evicted %+v with invalid ways free", ev)
	}
	if ev, had := c.Insert(48, 3); had {
		t.Fatalf("Insert(48) evicted %+v with an invalid way free", ev)
	}
	// Set now full; the next insert must evict the true LRU (line 0).
	ev, had := c.Insert(64, 4)
	if !had || ev.Line != 0 {
		t.Fatalf("evicted %+v (had=%v), want line 0", ev, had)
	}
}

// TestRefillPromotesToMRU: re-inserting a resident line is a touch, so
// it must move the line off the LRU position exactly as an Access does.
func TestRefillPromotesToMRU(t *testing.T) {
	c := New[int](cfg(1024, 2))
	c.Insert(0, 0)  // way 0
	c.Insert(16, 1) // way 1; LRU order now 0 < 16
	c.Insert(0, 2)  // refill: 0 becomes MRU, 16 becomes LRU
	ev, had := c.Insert(32, 3)
	if !had || ev.Line != 16 {
		t.Fatalf("evicted %+v (had=%v), want line 16 (refill must promote)", ev, had)
	}
}

// Property: after any access/insert sequence, residency never exceeds
// capacity, and a line reported resident by Probe hits on Access.
func TestResidencyInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New[struct{}](cfg(512, 2)) // 16 lines
		for _, op := range ops {
			line := Line(op % 64)
			if op&0x8000 != 0 {
				c.Insert(line, struct{}{})
			} else {
				c.Access(line)
			}
			if c.Resident() > 16 {
				return false
			}
			if _, ok := c.Probe(line); ok {
				if _, hit := c.Access(line); !hit {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the cache behaves like a per-set LRU reference model.
func TestLRUModelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := New[struct{}](cfg(512, 2)) // 8 sets x 2 ways
	type ref struct{ lines []Line } // MRU at end
	model := make([]ref, 8)
	setOf := func(l Line) int { return int(l % 8) }
	touch := func(l Line) {
		s := &model[setOf(l)]
		for i, x := range s.lines {
			if x == l {
				s.lines = append(append(s.lines[:i:i], s.lines[i+1:]...), l)
				return
			}
		}
		s.lines = append(s.lines, l)
		if len(s.lines) > 2 {
			s.lines = s.lines[1:]
		}
	}
	resident := func(l Line) bool {
		for _, x := range model[setOf(l)].lines {
			if x == l {
				return true
			}
		}
		return false
	}
	for i := 0; i < 5000; i++ {
		l := Line(rng.Intn(40))
		wantHit := resident(l)
		_, hit := c.Access(l)
		if hit != wantHit {
			t.Fatalf("op %d line %d: hit=%v, model says %v", i, l, hit, wantHit)
		}
		if !hit {
			c.Insert(l, struct{}{})
		}
		touch(l)
	}
}
