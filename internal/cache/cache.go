// Package cache implements the set-associative cache model used for the
// L1 instruction cache, L1 data cache and unified L2 of the simulated
// memory hierarchy (Table 1 of the paper).
//
// The cache is generic over a per-line payload so the CPU model can hang
// prefetch bookkeeping (who prefetched a line, whether it was ever used)
// off L1I lines without the cache knowing about prefetchers.
//
// Layout: the model is a struct-of-arrays — one flat tag array and one
// flat payload array, indexed set*assoc+way — so the way-scan on the
// simulator's hottest path (Access) only touches the densely packed tag
// words and never drags payload bytes through the data cache of the
// machine running the simulation. Validity is encoded in the tag itself
// (see invalidTag), and true-LRU state is a packed per-set order word
// instead of per-way timestamps. Access is additionally specialized for
// the 2- and 4-way geometries of Table 1. The reference model this was
// optimized from survives as internal/refsim; the differential tests in
// this package and in refsim's users prove the two agree counter for
// counter on arbitrary access streams.
package cache

import (
	"fmt"
	"math/bits"
)

// Line is a cache-line index (byte address >> line shift). The all-ones
// value is reserved as the invalid-way sentinel; it cannot occur for a
// real line because line indices are byte addresses shifted right, so
// they never fill all 64 bits.
type Line uint64

// invalidTag marks an empty way in the tag array.
const invalidTag = ^Line(0)

// Stats counts accesses and misses.
type Stats struct {
	Accesses  int64
	Misses    int64
	Evictions int64
	Inserts   int64
}

// MissRate returns Misses/Accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// orderedAssocMax is the widest associativity the packed LRU order word
// supports: 16 ways of 4 bits each in a uint64. Wider (and
// fully-associative) geometries fall back to per-way timestamps.
const orderedAssocMax = 16

// Cache is a set-associative cache with true-LRU replacement and a
// per-line payload of type P.
type Cache[P any] struct {
	name  string
	assoc int
	// setMask extracts the set index from a line.
	setMask Line
	// tags holds the line index per way (set*assoc+way), or invalidTag.
	tags []Line
	// payloads is the parallel payload array.
	payloads []P
	// order is one packed LRU word per set when assoc <=
	// orderedAssocMax: the way index at rank r (r=0 is MRU, assoc-1 is
	// LRU) lives in bits [4r, 4r+4). A set's word is always a
	// permutation of its way indices.
	order []uint64
	// last and tick are the wide-geometry fallback: per-way timestamps
	// of the most recent touch, as the pre-optimization model kept for
	// every geometry.
	last []uint64
	tick uint64

	stats Stats
}

// Config sizes a cache.
type Config struct {
	Name      string
	SizeBytes int
	Assoc     int
	LineBytes int
}

// Lines returns the line capacity of the configuration.
func (c Config) Lines() int { return c.SizeBytes / c.LineBytes }

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Lines() / c.Assoc }

// New builds a cache from cfg. It panics if the geometry is not a power
// of two or the associativity does not divide the line count, since a
// mis-sized cache model silently corrupts every downstream experiment.
func New[P any](cfg Config) *Cache[P] {
	lines := cfg.Lines()
	if lines <= 0 || cfg.Assoc <= 0 || lines%cfg.Assoc != 0 {
		panic(fmt.Sprintf("cache %s: bad geometry size=%d assoc=%d line=%d",
			cfg.Name, cfg.SizeBytes, cfg.Assoc, cfg.LineBytes))
	}
	sets := lines / cfg.Assoc
	if bits.OnesCount(uint(sets)) != 1 {
		panic(fmt.Sprintf("cache %s: sets=%d not a power of two", cfg.Name, sets))
	}
	c := &Cache[P]{
		name:     cfg.Name,
		assoc:    cfg.Assoc,
		setMask:  Line(sets - 1),
		tags:     make([]Line, lines),
		payloads: make([]P, lines),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	if cfg.Assoc <= orderedAssocMax {
		c.order = make([]uint64, sets)
		for i := range c.order {
			c.order[i] = identityOrder(cfg.Assoc)
		}
	} else {
		c.last = make([]uint64, lines)
	}
	return c
}

// identityOrder returns the packed order word [0, 1, ..., assoc-1]
// (way 0 MRU). Which permutation a set starts from is unobservable —
// invalid ways are filled lowest-index-first before the order word ever
// picks a victim — but the identity keeps InvalidateAll deterministic.
func identityOrder(assoc int) uint64 {
	var o uint64
	for w := assoc - 1; w >= 0; w-- {
		o = o<<4 | uint64(w)
	}
	return o
}

// promote moves way w to MRU in the packed order word o, preserving the
// relative order of the other ways: the ranks below w's old position
// shift up one nibble and w drops into rank 0.
func promote(o uint64, w int) uint64 {
	uw := uint64(w)
	if o&0xF == uw {
		return o
	}
	r := uint(1)
	for (o>>(4*r))&0xF != uw {
		r++
	}
	low := o & (1<<(4*r) - 1)
	return o&^(1<<(4*(r+1))-1) | low<<4 | uw
}

// Stats returns a copy of the access counters.
func (c *Cache[P]) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without touching contents.
func (c *Cache[P]) ResetStats() { c.stats = Stats{} }

// Sets returns the number of sets.
func (c *Cache[P]) Sets() int { return len(c.tags) / c.assoc }

// Assoc returns the associativity.
func (c *Cache[P]) Assoc() int { return c.assoc }

// Access looks line up, updating LRU state and hit/miss counters. On a
// hit it returns a pointer to the line's payload, which the caller may
// mutate in place; on a miss it returns nil. Access does not allocate
// the line — the memory model decides when a fill completes and calls
// Insert.
//
//cgplint:hotpath
func (c *Cache[P]) Access(line Line) (*P, bool) {
	c.stats.Accesses++
	set := int(line & c.setMask)
	base := set * c.assoc
	switch c.assoc {
	case 2:
		t := c.tags[base : base+2 : base+2]
		if t[0] == line {
			c.order[set] = 0x10
			return &c.payloads[base], true
		}
		if t[1] == line {
			c.order[set] = 0x01
			return &c.payloads[base+1], true
		}
	case 4:
		t := c.tags[base : base+4 : base+4]
		if t[0] == line {
			c.order[set] = promote(c.order[set], 0)
			return &c.payloads[base], true
		}
		if t[1] == line {
			c.order[set] = promote(c.order[set], 1)
			return &c.payloads[base+1], true
		}
		if t[2] == line {
			c.order[set] = promote(c.order[set], 2)
			return &c.payloads[base+2], true
		}
		if t[3] == line {
			c.order[set] = promote(c.order[set], 3)
			return &c.payloads[base+3], true
		}
	default:
		return c.accessGeneric(line, set, base)
	}
	c.stats.Misses++
	return nil, false
}

// accessGeneric is Access for associativities without a specialized
// scan, including the wide fallback geometries.
func (c *Cache[P]) accessGeneric(line Line, set, base int) (*P, bool) {
	for w := 0; w < c.assoc; w++ {
		if c.tags[base+w] == line {
			c.touch(set, base, w)
			return &c.payloads[base+w], true
		}
	}
	c.stats.Misses++
	return nil, false
}

// touch marks way w of set as most recently used.
func (c *Cache[P]) touch(set, base, w int) {
	if c.order != nil {
		c.order[set] = promote(c.order[set], w)
		return
	}
	c.tick++
	c.last[base+w] = c.tick
}

// Probe reports whether line is resident without perturbing LRU state or
// counters. Prefetchers probe before every issue, so like Access it gets
// a specialized scan for the Table-1 associativities.
//
//cgplint:hotpath
func (c *Cache[P]) Probe(line Line) (*P, bool) {
	base := int(line&c.setMask) * c.assoc
	switch c.assoc {
	case 2:
		t := c.tags[base : base+2 : base+2]
		if t[0] == line {
			return &c.payloads[base], true
		}
		if t[1] == line {
			return &c.payloads[base+1], true
		}
	case 4:
		t := c.tags[base : base+4 : base+4]
		if t[0] == line {
			return &c.payloads[base], true
		}
		if t[1] == line {
			return &c.payloads[base+1], true
		}
		if t[2] == line {
			return &c.payloads[base+2], true
		}
		if t[3] == line {
			return &c.payloads[base+3], true
		}
	default:
		for w := 0; w < c.assoc; w++ {
			if c.tags[base+w] == line {
				return &c.payloads[base+w], true
			}
		}
	}
	return nil, false
}

// Contains reports whether line is resident, like Probe without
// materializing the payload pointer. The prefetcher's squash filter
// probes once per candidate line — several times per fetched line —
// so this is a bare tag scan with no calls, small enough to inline
// into the caller (Probe's specialized scans are not).
//
//cgplint:hotpath
func (c *Cache[P]) Contains(line Line) bool {
	base := int(line&c.setMask) * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// Evicted describes a line displaced by Insert.
type Evicted[P any] struct {
	Line    Line
	Payload P
}

// Insert fills line with the given payload, evicting the LRU way if the
// set is full. It returns the eviction, if any. Inserting a line that is
// already resident replaces its payload in place (a refill) and evicts
// nothing. While a set still has invalid ways the lowest-numbered one
// is filled — an invalid way found early is never passed over for a
// later one — so physical placement is deterministic left to right.
//
//cgplint:hotpath
func (c *Cache[P]) Insert(line Line, payload P) (Evicted[P], bool) {
	if line == invalidTag {
		panic("cache " + c.name + ": line index reserved as invalid-way sentinel")
	}
	c.stats.Inserts++
	set := int(line & c.setMask)
	base := set * c.assoc
	firstInvalid := -1
	for w := 0; w < c.assoc; w++ {
		tag := c.tags[base+w]
		if tag == line {
			c.payloads[base+w] = payload
			c.touch(set, base, w)
			return Evicted[P]{}, false
		}
		if tag == invalidTag && firstInvalid < 0 {
			firstInvalid = w
		}
	}
	victim := firstInvalid
	var ev Evicted[P]
	had := false
	if victim < 0 {
		victim = c.lruWay(set, base)
		ev = Evicted[P]{Line: c.tags[base+victim], Payload: c.payloads[base+victim]}
		had = true
		c.stats.Evictions++
	}
	c.tags[base+victim] = line
	c.payloads[base+victim] = payload
	c.touch(set, base, victim)
	return ev, had
}

// lruWay returns the least-recently-used way of a full set.
func (c *Cache[P]) lruWay(set, base int) int {
	if c.order != nil {
		return int(c.order[set] >> (4 * uint(c.assoc-1)) & 0xF)
	}
	victim := 0
	for w := 1; w < c.assoc; w++ {
		if c.last[base+w] < c.last[base+victim] {
			victim = w
		}
	}
	return victim
}

// InvalidateAll clears the cache contents (not the statistics).
func (c *Cache[P]) InvalidateAll() {
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	clear(c.payloads)
	for i := range c.order {
		c.order[i] = identityOrder(c.assoc)
	}
	clear(c.last)
}

// Resident returns the number of valid lines, for tests and invariant
// checks.
func (c *Cache[P]) Resident() int {
	n := 0
	for i := range c.tags {
		if c.tags[i] != invalidTag {
			n++
		}
	}
	return n
}

// ForEach visits every resident line. Iteration order is by set then
// way, which is deterministic.
func (c *Cache[P]) ForEach(fn func(line Line, payload *P)) {
	for i := range c.tags {
		if c.tags[i] != invalidTag {
			fn(c.tags[i], &c.payloads[i])
		}
	}
}
