// Package cache implements the set-associative cache model used for the
// L1 instruction cache, L1 data cache and unified L2 of the simulated
// memory hierarchy (Table 1 of the paper).
//
// The cache is generic over a per-line payload so the CPU model can hang
// prefetch bookkeeping (who prefetched a line, whether it was ever used)
// off L1I lines without the cache knowing about prefetchers.
package cache

import (
	"fmt"
	"math/bits"
)

// Line is a cache-line index (byte address >> line shift).
type Line uint64

// Stats counts accesses and misses.
type Stats struct {
	Accesses  int64
	Misses    int64
	Evictions int64
	Inserts   int64
}

// MissRate returns Misses/Accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type way[P any] struct {
	tag     Line
	valid   bool
	lastUse uint64
	payload P
}

// Cache is a set-associative cache with true-LRU replacement and a
// per-line payload of type P.
type Cache[P any] struct {
	name    string
	sets    []way[P]
	assoc   int
	setMask Line
	tick    uint64
	stats   Stats
}

// Config sizes a cache.
type Config struct {
	Name      string
	SizeBytes int
	Assoc     int
	LineBytes int
}

// Lines returns the line capacity of the configuration.
func (c Config) Lines() int { return c.SizeBytes / c.LineBytes }

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Lines() / c.Assoc }

// New builds a cache from cfg. It panics if the geometry is not a power
// of two or the associativity does not divide the line count, since a
// mis-sized cache model silently corrupts every downstream experiment.
func New[P any](cfg Config) *Cache[P] {
	lines := cfg.Lines()
	if lines <= 0 || cfg.Assoc <= 0 || lines%cfg.Assoc != 0 {
		panic(fmt.Sprintf("cache %s: bad geometry size=%d assoc=%d line=%d",
			cfg.Name, cfg.SizeBytes, cfg.Assoc, cfg.LineBytes))
	}
	sets := lines / cfg.Assoc
	if bits.OnesCount(uint(sets)) != 1 {
		panic(fmt.Sprintf("cache %s: sets=%d not a power of two", cfg.Name, sets))
	}
	return &Cache[P]{
		name:    cfg.Name,
		sets:    make([]way[P], lines),
		assoc:   cfg.Assoc,
		setMask: Line(sets - 1),
	}
}

// Stats returns a copy of the access counters.
func (c *Cache[P]) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without touching contents.
func (c *Cache[P]) ResetStats() { c.stats = Stats{} }

// Sets returns the number of sets.
func (c *Cache[P]) Sets() int { return len(c.sets) / c.assoc }

// Assoc returns the associativity.
func (c *Cache[P]) Assoc() int { return c.assoc }

func (c *Cache[P]) setFor(line Line) []way[P] {
	s := int(line&c.setMask) * c.assoc
	return c.sets[s : s+c.assoc]
}

// Access looks line up, updating LRU state and hit/miss counters. On a
// hit it returns a pointer to the line's payload, which the caller may
// mutate in place; on a miss it returns nil. Access does not allocate
// the line — the memory model decides when a fill completes and calls
// Insert.
func (c *Cache[P]) Access(line Line) (*P, bool) {
	c.stats.Accesses++
	c.tick++
	set := c.setFor(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			set[i].lastUse = c.tick
			return &set[i].payload, true
		}
	}
	c.stats.Misses++
	return nil, false
}

// Probe reports whether line is resident without perturbing LRU state or
// counters (prefetchers probe before issuing).
func (c *Cache[P]) Probe(line Line) (*P, bool) {
	set := c.setFor(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			return &set[i].payload, true
		}
	}
	return nil, false
}

// Evicted describes a line displaced by Insert.
type Evicted[P any] struct {
	Line    Line
	Payload P
}

// Insert fills line with the given payload, evicting the LRU way if the
// set is full. It returns the eviction, if any. Inserting a line that is
// already resident replaces its payload in place (a refill) and evicts
// nothing.
func (c *Cache[P]) Insert(line Line, payload P) (Evicted[P], bool) {
	c.stats.Inserts++
	c.tick++
	set := c.setFor(line)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == line {
			set[i].payload = payload
			set[i].lastUse = c.tick
			return Evicted[P]{}, false
		}
		if !set[i].valid {
			victim = i
			// Keep scanning: the line might still be resident in a
			// later way.
			continue
		}
		if set[victim].valid && set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	var ev Evicted[P]
	had := false
	if set[victim].valid {
		ev = Evicted[P]{Line: set[victim].tag, Payload: set[victim].payload}
		had = true
		c.stats.Evictions++
	}
	set[victim] = way[P]{tag: line, valid: true, lastUse: c.tick, payload: payload}
	return ev, had
}

// InvalidateAll clears the cache contents (not the statistics).
func (c *Cache[P]) InvalidateAll() {
	for i := range c.sets {
		c.sets[i] = way[P]{}
	}
}

// Resident returns the number of valid lines, for tests and invariant
// checks.
func (c *Cache[P]) Resident() int {
	n := 0
	for i := range c.sets {
		if c.sets[i].valid {
			n++
		}
	}
	return n
}

// ForEach visits every resident line. Iteration order is by set then
// way, which is deterministic.
func (c *Cache[P]) ForEach(fn func(line Line, payload *P)) {
	for i := range c.sets {
		if c.sets[i].valid {
			fn(c.sets[i].tag, &c.sets[i].payload)
		}
	}
}
