package cache_test

import (
	"math/rand"
	"testing"

	"cgp/internal/cache"
	"cgp/internal/refsim"
)

// mapRef is a simple map/slice per-set LRU reference cache: each set is
// an MRU-ordered slice of resident lines with payloads in a map. It is
// written for obviousness, not speed, and is the behavioural oracle the
// optimized flat-array cache must match operation for operation.
type mapRef struct {
	assoc    int
	sets     [][]cache.Line // per set, LRU first, MRU last
	payloads map[cache.Line]int
	stats    cache.Stats
}

func newMapRef(cfg cache.Config) *mapRef {
	return &mapRef{
		assoc:    cfg.Assoc,
		sets:     make([][]cache.Line, cfg.Sets()),
		payloads: make(map[cache.Line]int),
	}
}

func (m *mapRef) setOf(line cache.Line) int { return int(line) % len(m.sets) }

func (m *mapRef) find(line cache.Line) (set, pos int) {
	set = m.setOf(line)
	for i, l := range m.sets[set] {
		if l == line {
			return set, i
		}
	}
	return set, -1
}

func (m *mapRef) Access(line cache.Line) (int, bool) {
	m.stats.Accesses++
	set, pos := m.find(line)
	if pos < 0 {
		m.stats.Misses++
		return 0, false
	}
	s := m.sets[set]
	m.sets[set] = append(append(s[:pos:pos], s[pos+1:]...), line)
	return m.payloads[line], true
}

func (m *mapRef) Probe(line cache.Line) (int, bool) {
	if _, pos := m.find(line); pos < 0 {
		return 0, false
	}
	return m.payloads[line], true
}

func (m *mapRef) Insert(line cache.Line, payload int) (cache.Evicted[int], bool) {
	m.stats.Inserts++
	set, pos := m.find(line)
	m.payloads[line] = payload
	if pos >= 0 {
		s := m.sets[set]
		m.sets[set] = append(append(s[:pos:pos], s[pos+1:]...), line)
		return cache.Evicted[int]{}, false
	}
	var ev cache.Evicted[int]
	had := false
	if len(m.sets[set]) == m.assoc {
		victim := m.sets[set][0]
		ev = cache.Evicted[int]{Line: victim, Payload: m.payloads[victim]}
		had = true
		m.stats.Evictions++
		delete(m.payloads, victim)
		m.sets[set] = m.sets[set][1:]
	}
	m.sets[set] = append(m.sets[set], line)
	return ev, had
}

// diffConfig builds a geometry with the given associativity whose set
// count is a power of two.
func diffConfig(assoc, sets int) cache.Config {
	return cache.Config{Name: "diff", SizeBytes: assoc * sets * 32, Assoc: assoc, LineBytes: 32}
}

// TestDifferentialAgainstReferences replays seeded random access /
// probe / insert streams through the optimized cache, the map-based
// oracle, and the frozen pre-optimization kernel (refsim), and demands
// exact agreement on every hit, every payload, every eviction victim
// and the full counter set — across the specialized 2/4-way scans, the
// generic packed-order path and the wide timestamp fallback.
func TestDifferentialAgainstReferences(t *testing.T) {
	geometries := []struct {
		assoc, sets int
	}{
		{1, 16}, {2, 8}, {2, 64}, {4, 4}, {4, 32}, {8, 8}, {16, 2}, {32, 2},
	}
	for _, g := range geometries {
		cfg := diffConfig(g.assoc, g.sets)
		opt := cache.New[int](cfg)
		oracle := newMapRef(cfg)
		ref := refsim.NewCache[int](cfg)
		rng := rand.New(rand.NewSource(int64(g.assoc*1000 + g.sets)))
		// Enough distinct lines to force heavy conflict in every set.
		lineSpace := cache.Line(g.sets * (g.assoc*2 + 3))
		for op := 0; op < 20000; op++ {
			line := cache.Line(rng.Intn(int(lineSpace)))
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // access
				op1, hit1 := opt.Access(line)
				op2, hit2 := oracle.Access(line)
				op3, hit3 := ref.Access(line)
				if hit1 != hit2 || hit1 != hit3 {
					t.Fatalf("assoc=%d op %d: Access(%d) hit=%v oracle=%v refsim=%v",
						g.assoc, op, line, hit1, hit2, hit3)
				}
				if hit1 && (*op1 != op2 || *op1 != *op3) {
					t.Fatalf("assoc=%d op %d: Access(%d) payload=%d oracle=%d refsim=%d",
						g.assoc, op, line, *op1, op2, *op3)
				}
			case 4, 5: // probe
				op1, hit1 := opt.Probe(line)
				op2, hit2 := oracle.Probe(line)
				op3, hit3 := ref.Probe(line)
				if hit1 != hit2 || hit1 != hit3 {
					t.Fatalf("assoc=%d op %d: Probe(%d) hit=%v oracle=%v refsim=%v",
						g.assoc, op, line, hit1, hit2, hit3)
				}
				if hit1 && (*op1 != op2 || *op1 != *op3) {
					t.Fatalf("assoc=%d op %d: Probe(%d) payload mismatch", g.assoc, op, line)
				}
			default: // insert
				ev1, had1 := opt.Insert(line, op)
				ev2, had2 := oracle.Insert(line, op)
				ev3, had3 := ref.Insert(line, op)
				if had1 != had2 || had1 != had3 {
					t.Fatalf("assoc=%d op %d: Insert(%d) evicted=%v oracle=%v refsim=%v",
						g.assoc, op, line, had1, had2, had3)
				}
				if had1 && (ev1 != ev2 || ev1 != ev3) {
					t.Fatalf("assoc=%d op %d: Insert(%d) victim=%+v oracle=%+v refsim=%+v",
						g.assoc, op, line, ev1, ev2, ev3)
				}
			}
		}
		if opt.Stats() != oracle.stats || opt.Stats() != ref.Stats() {
			t.Fatalf("assoc=%d: stats diverged: opt=%+v oracle=%+v refsim=%+v",
				g.assoc, opt.Stats(), oracle.stats, ref.Stats())
		}
	}
}

// TestDifferentialSurvivesInvalidateAll checks the optimized cache
// against the map oracle across InvalidateAll boundaries (refsim has no
// InvalidateAll; the oracle simply starts over).
func TestDifferentialSurvivesInvalidateAll(t *testing.T) {
	cfg := diffConfig(4, 8)
	opt := cache.New[int](cfg)
	oracle := newMapRef(cfg)
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 5; round++ {
		for op := 0; op < 3000; op++ {
			line := cache.Line(rng.Intn(96))
			if rng.Intn(2) == 0 {
				_, hit1 := opt.Access(line)
				_, hit2 := oracle.Access(line)
				if hit1 != hit2 {
					t.Fatalf("round %d op %d: Access(%d) hit=%v oracle=%v", round, op, line, hit1, hit2)
				}
			} else {
				ev1, had1 := opt.Insert(line, op)
				ev2, had2 := oracle.Insert(line, op)
				if had1 != had2 || ev1 != ev2 {
					t.Fatalf("round %d op %d: Insert(%d) mismatch", round, op, line)
				}
			}
		}
		opt.InvalidateAll()
		if opt.Resident() != 0 {
			t.Fatalf("round %d: %d lines survived InvalidateAll", round, opt.Resident())
		}
		oracle.sets = make([][]cache.Line, cfg.Sets())
		oracle.payloads = make(map[cache.Line]int)
		oracle.stats = opt.Stats() // stats survive invalidation on both sides
	}
}
