// Package prefetch defines the instruction-prefetcher interface the CPU
// front end drives, plus the sequential prefetchers the paper compares
// against: next-N-line (NL, Smith & Hsu) and the run-ahead NL variant of
// §5.6. The paper's own contribution, Call Graph Prefetching, lives in
// internal/core and implements the same interface.
package prefetch

import "cgp/internal/isa"

// Portion attributes a prefetch request to the component that issued it,
// so Figure 9's NL-portion vs CGHC-portion split can be reproduced.
type Portion uint8

const (
	// PortionNL marks prefetches issued by a next-N-line component.
	PortionNL Portion = iota
	// PortionCGHC marks prefetches issued by the call-graph history cache.
	PortionCGHC
)

// String returns the portion name. It doubles as the stable key
// suffix for per-portion observability counters
// (sim_prefetch_issued_nl, sim_prefetch_useful_cghc, ...), so renaming
// a portion is a metrics-schema change, not a cosmetic one.
func (p Portion) String() string {
	if p == PortionCGHC {
		return "cghc"
	}
	return "nl"
}

// Portions lists every portion in stable declaration order, for
// callers that emit per-portion metrics or table columns.
func Portions() []Portion { return []Portion{PortionNL, PortionCGHC} }

// Request is one line prefetch: the line-aligned address to fetch and
// the component that asked for it.
type Request struct {
	Addr    isa.Addr
	Portion Portion
}

// Issue is the sink prefetchers push requests into. The memory system
// behind it squashes requests for lines already resident or in flight.
// The type is a hot func type: every value bound to it is invoked once
// or more per prefetch candidate, so allocfree verifies each binding.
//
//cgplint:hotpath
type Issue func(Request)

// Prefetcher is driven by the CPU front end.
//
// OnFetch is called once per demand-fetched cache line with the line
// address. OnCall and OnReturn are called when the branch predictor
// resolves a call or return; sequential prefetchers ignore them. The
// three event hooks are hot interface methods: they run inside the
// simulator's per-event loop, so allocfree verifies every
// implementation. Name is configuration-time only and stays unmarked.
type Prefetcher interface {
	Name() string
	//cgplint:hotpath
	OnFetch(line isa.Addr, issue Issue)
	//cgplint:hotpath
	OnCall(target, callerStart isa.Addr, issue Issue)
	//cgplint:hotpath
	OnReturn(predictedCallerStart, returningStart isa.Addr, issue Issue)
}

// None is the null prefetcher (the O5 and O5+OM baselines).
type None struct{}

// Name implements Prefetcher.
func (None) Name() string { return "none" }

// OnFetch implements Prefetcher.
func (None) OnFetch(isa.Addr, Issue) {}

// OnCall implements Prefetcher.
func (None) OnCall(isa.Addr, isa.Addr, Issue) {}

// OnReturn implements Prefetcher.
func (None) OnReturn(isa.Addr, isa.Addr, Issue) {}

// NL is next-N-line prefetching: when the CPU fetches a line, the next N
// sequential lines are prefetched unless already present (§2).
type NL struct {
	// N is the number of sequential lines to prefetch.
	N int
	// lastTrigger suppresses re-issuing the same window while fetch
	// stays within one line.
	lastTrigger isa.Addr
	haveTrigger bool
}

// NewNL returns a next-N-line prefetcher.
func NewNL(n int) *NL {
	if n <= 0 {
		panic("prefetch: NL degree must be positive")
	}
	return &NL{N: n}
}

// Name implements Prefetcher.
func (p *NL) Name() string { return nlName("nl", p.N) }

// OnFetch implements Prefetcher.
func (p *NL) OnFetch(line isa.Addr, issue Issue) {
	line = isa.LineAddr(line)
	if p.haveTrigger && p.lastTrigger == line {
		return
	}
	p.haveTrigger = true
	p.lastTrigger = line
	for i := 1; i <= p.N; i++ {
		issue(Request{Addr: line + isa.Addr(i*isa.LineBytes), Portion: PortionNL})
	}
}

// OnCall implements Prefetcher.
func (p *NL) OnCall(isa.Addr, isa.Addr, Issue) {}

// OnReturn implements Prefetcher.
func (p *NL) OnReturn(isa.Addr, isa.Addr, Issue) {}

// RunAheadNL is the modified NL scheme of §5.6: instead of the next N
// lines, it prefetches N lines beginning M lines after the current
// fetch. The paper found it performs much worse than NL on DB workloads;
// it is included as the ablation.
type RunAheadNL struct {
	N, M        int
	lastTrigger isa.Addr
	haveTrigger bool
}

// NewRunAheadNL returns a run-ahead NL prefetcher.
func NewRunAheadNL(n, m int) *RunAheadNL {
	if n <= 0 || m <= 0 {
		panic("prefetch: run-ahead NL degrees must be positive")
	}
	return &RunAheadNL{N: n, M: m}
}

// Name implements Prefetcher.
func (p *RunAheadNL) Name() string { return nlName("ranl", p.N) }

// OnFetch implements Prefetcher.
func (p *RunAheadNL) OnFetch(line isa.Addr, issue Issue) {
	line = isa.LineAddr(line)
	if p.haveTrigger && p.lastTrigger == line {
		return
	}
	p.haveTrigger = true
	p.lastTrigger = line
	for i := 0; i < p.N; i++ {
		off := isa.Addr((p.M + i) * isa.LineBytes)
		issue(Request{Addr: line + off, Portion: PortionNL})
	}
}

// OnCall implements Prefetcher.
func (p *RunAheadNL) OnCall(isa.Addr, isa.Addr, Issue) {}

// OnReturn implements Prefetcher.
func (p *RunAheadNL) OnReturn(isa.Addr, isa.Addr, Issue) {}

func nlName(base string, n int) string {
	return base + "_" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
