package prefetch

import (
	"testing"

	"cgp/internal/isa"
)

func collect(reqs *[]Request) Issue {
	return func(r Request) { *reqs = append(*reqs, r) }
}

func TestNLIssuesNextNLines(t *testing.T) {
	p := NewNL(4)
	var reqs []Request
	p.OnFetch(0x400000, collect(&reqs))
	if len(reqs) != 4 {
		t.Fatalf("issued %d requests, want 4", len(reqs))
	}
	for i, r := range reqs {
		want := isa.Addr(0x400000 + (i+1)*isa.LineBytes)
		if r.Addr != want {
			t.Errorf("req %d addr %#x, want %#x", i, r.Addr, want)
		}
		if r.Portion != PortionNL {
			t.Errorf("req %d portion %v, want NL", i, r.Portion)
		}
	}
}

func TestNLSuppressesRepeatTrigger(t *testing.T) {
	p := NewNL(2)
	var reqs []Request
	p.OnFetch(0x400000, collect(&reqs))
	p.OnFetch(0x400010, collect(&reqs)) // same line
	if len(reqs) != 2 {
		t.Fatalf("issued %d requests, want 2 (same-line re-trigger)", len(reqs))
	}
	p.OnFetch(0x400020, collect(&reqs)) // next line
	if len(reqs) != 4 {
		t.Fatalf("issued %d requests, want 4 after new line", len(reqs))
	}
}

func TestNLIgnoresCallsAndReturns(t *testing.T) {
	p := NewNL(2)
	var reqs []Request
	p.OnCall(0x400000, 0x500000, collect(&reqs))
	p.OnReturn(0x400000, 0x500000, collect(&reqs))
	if len(reqs) != 0 {
		t.Errorf("NL issued %d requests on call/return", len(reqs))
	}
}

func TestRunAheadNLOffsets(t *testing.T) {
	p := NewRunAheadNL(2, 4)
	var reqs []Request
	p.OnFetch(0x400000, collect(&reqs))
	if len(reqs) != 2 {
		t.Fatalf("issued %d, want 2", len(reqs))
	}
	if reqs[0].Addr != 0x400000+4*isa.LineBytes {
		t.Errorf("first run-ahead addr %#x, want M=4 lines ahead", reqs[0].Addr)
	}
	if reqs[1].Addr != 0x400000+5*isa.LineBytes {
		t.Errorf("second run-ahead addr %#x", reqs[1].Addr)
	}
}

func TestNames(t *testing.T) {
	if got := NewNL(4).Name(); got != "nl_4" {
		t.Errorf("NL name %q", got)
	}
	if got := NewRunAheadNL(2, 4).Name(); got != "ranl_2" {
		t.Errorf("run-ahead name %q", got)
	}
	if got := (None{}).Name(); got != "none" {
		t.Errorf("none name %q", got)
	}
}

func TestBadDegreesPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { NewNL(0) },
		func() { NewRunAheadNL(0, 1) },
		func() { NewRunAheadNL(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
