// Package program models the static side of a simulated binary: the set
// of functions that make up an application, their synthetic code sizes
// and branch behaviour, and the layout of those functions into an
// address-space image.
//
// Two layouts are provided, mirroring the paper's two binaries:
//
//   - O5: functions appear in registration (link) order with default
//     intra-function branch behaviour. This stands in for the compiler's
//     -O5 output.
//   - OM: a profile-guided layout in the style of the OM link-time
//     optimizer: Pettis-Hansen "closest-is-best" function placement from
//     measured call-edge weights, straightened intra-function branches
//     (lower taken-branch rate) and a reduced dynamic instruction count.
package program

import (
	"fmt"
	"sort"

	"cgp/internal/isa"
)

// FuncID identifies a registered function. IDs are dense and start at 0.
type FuncID int32

// NoFunc is the zero value used when no function applies (e.g. the
// caller of the outermost frame).
const NoFunc FuncID = -1

// FuncInfo describes one function of the simulated binary.
type FuncInfo struct {
	ID   FuncID
	Name string
	// Size is the static body size in instructions.
	Size int
	// TakenRate is the probability that a conditional branch inside the
	// body is taken (and thus breaks sequential fetch). The O5 image uses
	// this value as-is; the OM image reduces it.
	TakenRate float64
	// BranchEvery is the average number of instructions between
	// conditional branch points inside the body.
	BranchEvery int
	// Helpers are the small private functions this function calls
	// between its instrumented call sites (slot accessors, comparators,
	// allocation wrappers...). The tracer cycles through them in a
	// stable order per invocation — the highly repeatable call
	// sequences CGP feeds on.
	Helpers []FuncID
}

// Registry holds the functions of one application. A Registry is built
// once (at "link time") and then shared by all images of the program.
type Registry struct {
	funcs  []FuncInfo
	byName map[string]FuncID
	// sizeScale multiplies registered sizes (1.0 default). Real database
	// binaries carry far more code per conceptual function than the
	// instrumented skeleton names, and the scale recovers that footprint.
	sizeScale float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]FuncID), sizeScale: 1.0}
}

// SetSizeScale sets the multiplier applied to subsequently registered
// function sizes. It must be called before Register.
func (r *Registry) SetSizeScale(s float64) {
	if s <= 0 {
		panic("program: size scale must be positive")
	}
	r.sizeScale = s
}

// DefaultTakenRate is the taken-branch probability assigned to functions
// registered without an explicit rate. It reflects unoptimized code in
// which roughly one branch in three redirects fetch.
const DefaultTakenRate = 0.40

// DefaultBranchEvery is the default distance, in instructions, between
// conditional branches.
const DefaultBranchEvery = 10

// Register adds a function with the given name and body size (in
// instructions) and returns its ID. Registering the same name twice
// panics: function names double as stable identifiers in tests and
// profiles.
func (r *Registry) Register(name string, size int) FuncID {
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("program: duplicate function %q", name))
	}
	size = int(float64(size) * r.sizeScale)
	if size < 1 {
		size = 1
	}
	id := FuncID(len(r.funcs))
	r.funcs = append(r.funcs, FuncInfo{
		ID:          id,
		Name:        name,
		Size:        size,
		TakenRate:   DefaultTakenRate,
		BranchEvery: DefaultBranchEvery,
	})
	r.byName[name] = id
	return id
}

// GenerateHelpers gives every already-registered function of at least
// minSize instructions a set of helper functions, one per perInstr
// instructions of parent body, with sizes in [sizeLo, sizeHi]. Helper
// sizes are NOT subject to the registry's size scale (they are already
// final), and helpers get no helpers of their own. Deterministic for a
// given registry state.
func (r *Registry) GenerateHelpers(minSize, perInstr, sizeLo, sizeHi int) {
	if perInstr <= 0 || sizeHi < sizeLo {
		panic("program: bad helper generation parameters")
	}
	savedScale := r.sizeScale
	r.sizeScale = 1.0
	defer func() { r.sizeScale = savedScale }()
	primaries := len(r.funcs)
	for id := 0; id < primaries; id++ {
		parent := r.funcs[id]
		if parent.Size < minSize {
			continue
		}
		k := 1 + parent.Size/perInstr
		if k > 6 {
			k = 6
		}
		for j := 0; j < k; j++ {
			h := siteHash(uint64(id)*31+uint64(j), 0x4E)
			size := sizeLo + int(h%uint64(sizeHi-sizeLo+1))
			hid := r.Register(fmt.Sprintf("%s.h%d", parent.Name, j), size)
			r.funcs[id].Helpers = append(r.funcs[id].Helpers, hid)
		}
	}
}

// siteHash mixes two values into a stable pseudo-random 64-bit value.
func siteHash(a, b uint64) uint64 {
	x := a*0x9E3779B97F4A7C15 ^ b*0xBF58476D1CE4E5B9
	x ^= x >> 31
	x *= 0x94D049BB133111EB
	x ^= x >> 29
	return x
}

// SetBranchProfile overrides the branch behaviour of fn.
func (r *Registry) SetBranchProfile(fn FuncID, takenRate float64, branchEvery int) {
	f := &r.funcs[fn]
	f.TakenRate = takenRate
	if branchEvery > 0 {
		f.BranchEvery = branchEvery
	}
}

// Lookup returns the ID for name.
func (r *Registry) Lookup(name string) (FuncID, bool) {
	id, ok := r.byName[name]
	return id, ok
}

// Info returns the descriptor for fn.
func (r *Registry) Info(fn FuncID) FuncInfo { return r.funcs[fn] }

// Name returns the name of fn, or "<none>" for NoFunc.
func (r *Registry) Name(fn FuncID) string {
	if fn == NoFunc {
		return "<none>"
	}
	return r.funcs[fn].Name
}

// Len returns the number of registered functions.
func (r *Registry) Len() int { return len(r.funcs) }

// Funcs returns a copy of all function descriptors in ID order.
func (r *Registry) Funcs() []FuncInfo {
	out := make([]FuncInfo, len(r.funcs))
	copy(out, r.funcs)
	return out
}

// TotalSize returns the static code footprint in bytes.
func (r *Registry) TotalSize() int {
	total := 0
	for _, f := range r.funcs {
		total += isa.InstrRangeBytes(f.Size)
	}
	return total
}

// Placement records where one function lives in an image.
type Placement struct {
	Start isa.Addr
	// SizeBytes is the body size in bytes after layout (OM may shrink it).
	SizeBytes int
	// TakenRate is the effective taken-branch rate in this image.
	TakenRate float64
	// BranchEvery is the effective branch spacing in this image.
	BranchEvery int
}

// End returns the first byte past the function body.
func (p Placement) End() isa.Addr { return p.Start + isa.Addr(p.SizeBytes) }

// Image is one laid-out binary: an address for every function plus the
// image-wide dynamic-instruction scale factor.
type Image struct {
	Name string
	reg  *Registry
	// place is indexed by FuncID.
	place []Placement
	// InstrScale multiplies dynamic run lengths. OM's link-time classical
	// optimizations removed 12% of dynamic instructions in the paper, so
	// its image uses 0.88; O5 uses 1.0.
	InstrScale float64
	// byStart supports reverse lookup (address -> function) for tests
	// and for the trace synthesizer.
	byStart map[isa.Addr]FuncID
	limit   isa.Addr
}

// Registry returns the registry the image was laid out from.
func (im *Image) Registry() *Registry { return im.reg }

// Placement returns where fn lives in this image.
func (im *Image) Placement(fn FuncID) Placement { return im.place[fn] }

// Start returns the starting address of fn.
func (im *Image) Start(fn FuncID) isa.Addr { return im.place[fn].Start }

// FuncAt returns the function whose body starts exactly at a.
func (im *Image) FuncAt(a isa.Addr) (FuncID, bool) {
	id, ok := im.byStart[a]
	return id, ok
}

// Limit returns the first address past the image.
func (im *Image) Limit() isa.Addr { return im.limit }

// FootprintBytes returns the total size of the image body in bytes.
func (im *Image) FootprintBytes() int { return int(im.limit - isa.CodeBase) }

// layoutInOrder assigns addresses to functions in the given order,
// aligning each body to a cache-line boundary (linkers align function
// entries; it also keeps the per-function NL clamp honest).
func layoutInOrder(name string, reg *Registry, order []FuncID, instrScale float64, takenScale float64) *Image {
	im := &Image{
		Name:       name,
		reg:        reg,
		place:      make([]Placement, reg.Len()),
		InstrScale: instrScale,
		byStart:    make(map[isa.Addr]FuncID, reg.Len()),
	}
	next := isa.CodeBase
	for _, fn := range order {
		f := reg.Info(fn)
		sizeBytes := isa.InstrRangeBytes(f.Size)
		tr := f.TakenRate * takenScale
		be := f.BranchEvery
		if takenScale < 1 {
			// Straightened code also spaces its remaining branches
			// further apart: blocks were merged.
			be = be * 3 / 2
		}
		im.place[fn] = Placement{Start: next, SizeBytes: sizeBytes, TakenRate: tr, BranchEvery: be}
		im.byStart[next] = fn
		next = isa.AlignUp(next+isa.Addr(sizeBytes), isa.LineBytes)
	}
	im.limit = next
	return im
}

// LayoutO5 builds the baseline image: registration order with each
// function's private helpers immediately after it (they live in the
// same object file, so the linker emits them together), unmodified
// branch behaviour, no instruction-count reduction.
func LayoutO5(reg *Registry) *Image {
	placed := make([]bool, reg.Len())
	order := make([]FuncID, 0, reg.Len())
	emit := func(fn FuncID) {
		if !placed[fn] {
			placed[fn] = true
			order = append(order, fn)
		}
	}
	for i := 0; i < reg.Len(); i++ {
		fn := FuncID(i)
		emit(fn)
		for _, h := range reg.Info(fn).Helpers {
			emit(h)
		}
	}
	return layoutInOrder("O5", reg, order, 1.0, 1.0)
}

// OMTakenScale is the factor by which OM's basic-block straightening
// reduces the taken-branch rate.
const OMTakenScale = 0.75

// OMInstrScale reflects OM's 12% dynamic-instruction reduction (§5.1).
const OMInstrScale = 0.88

// LayoutOM builds the profile-guided image. Functions are placed with the
// Pettis-Hansen closest-is-best strategy driven by the call-edge weights
// in prof; branch behaviour is straightened; the dynamic instruction
// count is scaled by OMInstrScale.
//
// Functions absent from the profile are appended in registration order
// after all profiled code, exactly as a link-time optimizer would demote
// never-executed code.
func LayoutOM(reg *Registry, prof *Profile) *Image {
	order := closestIsBest(reg, prof)
	return layoutInOrder("O5+OM", reg, order, OMInstrScale, OMTakenScale)
}

// closestIsBest implements Pettis-Hansen function placement: treat every
// function as a singleton chain, repeatedly merge the two chains joined
// by the heaviest remaining call edge, then concatenate leftover chains
// by total weight.
func closestIsBest(reg *Registry, prof *Profile) []FuncID {
	type edge struct {
		a, b FuncID
		w    int64
	}
	edges := make([]edge, 0, len(prof.CallEdges))
	for pair, w := range prof.CallEdges {
		if pair.Caller == NoFunc || pair.Callee == NoFunc || pair.Caller == pair.Callee {
			continue
		}
		edges = append(edges, edge{pair.Caller, pair.Callee, w})
	}
	// Heaviest first; break ties deterministically by IDs.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})

	n := reg.Len()
	chainOf := make([]int, n) // function -> chain index
	chains := make([][]FuncID, n)
	hot := make([]int64, n) // chain -> total edge weight absorbed
	for i := 0; i < n; i++ {
		chainOf[i] = i
		chains[i] = []FuncID{FuncID(i)}
	}
	for _, e := range edges {
		ca, cb := chainOf[e.a], chainOf[e.b]
		if ca == cb {
			continue
		}
		// Merge the callee's chain after the caller's chain: callers
		// fall through toward callees.
		merged := append(chains[ca], chains[cb]...)
		chains[ca] = merged
		chains[cb] = nil
		hot[ca] += hot[cb] + e.w
		for _, f := range chains[ca] {
			chainOf[f] = ca
		}
	}
	// Order chains: executed (hot) chains first, by weight, then cold
	// functions in registration order.
	type chainRef struct {
		idx int
		w   int64
	}
	var refs []chainRef
	for i, c := range chains {
		if len(c) == 0 {
			continue
		}
		w := hot[i]
		if w == 0 && prof.CallCounts[c[0]] > 0 {
			w = 1 // executed but never merged: still hotter than cold code
		}
		refs = append(refs, chainRef{i, w})
	}
	sort.SliceStable(refs, func(i, j int) bool {
		if refs[i].w != refs[j].w {
			return refs[i].w > refs[j].w
		}
		return chains[refs[i].idx][0] < chains[refs[j].idx][0]
	})
	order := make([]FuncID, 0, n)
	for _, ref := range refs {
		order = append(order, chains[ref.idx]...)
	}
	if len(order) != n {
		panic("program: closestIsBest lost functions")
	}
	return order
}
