package program

import "testing"

func TestProfileCounts(t *testing.T) {
	p := NewProfile()
	p.AddCall(0, 1)
	p.AddCall(0, 1)
	p.AddCall(0, 2)
	p.AddCall(1, 2)
	p.AddInstructions(430)
	if p.Calls != 4 {
		t.Errorf("calls = %d", p.Calls)
	}
	if p.CallEdges[CallPair{0, 1}] != 2 {
		t.Errorf("edge 0->1 = %d", p.CallEdges[CallPair{0, 1}])
	}
	if p.CallCounts[2] != 2 {
		t.Errorf("count(2) = %d", p.CallCounts[2])
	}
	if got := p.InstructionsPerCall(); got != 107.5 {
		t.Errorf("instr/call = %f", got)
	}
}

func TestProfileMerge(t *testing.T) {
	a := NewProfile()
	a.AddCall(0, 1)
	a.AddInstructions(100)
	b := NewProfile()
	b.AddCall(0, 1)
	b.AddCall(2, 3)
	b.AddInstructions(50)
	a.Merge(b)
	if a.Calls != 3 || a.Instructions != 150 {
		t.Errorf("merged = %d calls, %d instrs", a.Calls, a.Instructions)
	}
	if a.CallEdges[CallPair{0, 1}] != 2 {
		t.Errorf("edge weight = %d", a.CallEdges[CallPair{0, 1}])
	}
}

func TestFanout(t *testing.T) {
	p := NewProfile()
	// fn 0 calls 9 distinct functions; fn 1 calls 2.
	for i := 1; i <= 9; i++ {
		p.AddCall(0, FuncID(i))
	}
	p.AddCall(1, 2)
	p.AddCall(1, 3)
	p.AddCall(NoFunc, 0) // thread entry: excluded from fanout
	fan := p.FanoutDistinct()
	if fan[0] != 9 || fan[1] != 2 {
		t.Errorf("fanout = %v", fan)
	}
	if _, ok := fan[NoFunc]; ok {
		t.Error("NoFunc counted as a calling function")
	}
	if got := p.FanoutFractionBelow(8); got != 0.5 {
		t.Errorf("fraction below 8 = %f, want 0.5", got)
	}
}

func TestHottestEdges(t *testing.T) {
	p := NewProfile()
	for i := 0; i < 5; i++ {
		p.AddCall(1, 2)
	}
	for i := 0; i < 3; i++ {
		p.AddCall(3, 4)
	}
	p.AddCall(5, 6)
	edges := p.HottestEdges(2)
	if len(edges) != 2 {
		t.Fatalf("got %d edges", len(edges))
	}
	if edges[0] != (CallPair{1, 2}) || edges[1] != (CallPair{3, 4}) {
		t.Errorf("edges = %v", edges)
	}
}

func TestInstructionsPerCallEmpty(t *testing.T) {
	if got := NewProfile().InstructionsPerCall(); got != 0 {
		t.Errorf("empty profile instr/call = %f", got)
	}
}
