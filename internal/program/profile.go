package program

import "sort"

// CallPair is a (caller, callee) edge in the dynamic call graph.
type CallPair struct {
	Caller FuncID
	Callee FuncID
}

// Profile aggregates the feedback information a profile run produces:
// call-edge weights and per-function call counts. It is what LayoutOM
// consumes, standing in for the instrumented profile run OM requires.
type Profile struct {
	// CallEdges counts dynamic calls per (caller, callee) pair.
	CallEdges map[CallPair]int64
	// CallCounts counts dynamic invocations per callee.
	CallCounts map[FuncID]int64
	// Instructions is the total dynamic instruction count observed.
	Instructions int64
	// Calls is the total number of dynamic calls observed.
	Calls int64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{
		CallEdges:  make(map[CallPair]int64),
		CallCounts: make(map[FuncID]int64),
	}
}

// AddCall records one dynamic call.
func (p *Profile) AddCall(caller, callee FuncID) {
	p.CallEdges[CallPair{caller, callee}]++
	p.CallCounts[callee]++
	p.Calls++
}

// AddInstructions records n executed instructions.
func (p *Profile) AddInstructions(n int64) { p.Instructions += n }

// Merge folds other into p. The paper merges the profiles of two
// workload runs (wisc-prof and wisc+tpch) before feeding OM.
func (p *Profile) Merge(other *Profile) {
	for k, v := range other.CallEdges {
		p.CallEdges[k] += v
	}
	for k, v := range other.CallCounts {
		p.CallCounts[k] += v
	}
	p.Instructions += other.Instructions
	p.Calls += other.Calls
}

// InstructionsPerCall returns the average number of instructions
// executed between dynamic calls (the paper measures 43 for the DB
// workloads).
func (p *Profile) InstructionsPerCall() float64 {
	if p.Calls == 0 {
		return 0
	}
	return float64(p.Instructions) / float64(p.Calls)
}

// FanoutDistinct returns, for every function that makes calls, how many
// distinct callees it invokes. Used to validate the paper's ATOM
// observation that 80% of functions call fewer than 8 distinct functions.
func (p *Profile) FanoutDistinct() map[FuncID]int {
	fan := make(map[FuncID]map[FuncID]struct{})
	for pair := range p.CallEdges {
		if pair.Caller == NoFunc {
			continue
		}
		set := fan[pair.Caller]
		if set == nil {
			set = make(map[FuncID]struct{})
			fan[pair.Caller] = set
		}
		set[pair.Callee] = struct{}{}
	}
	out := make(map[FuncID]int, len(fan))
	for f, set := range fan {
		out[f] = len(set)
	}
	return out
}

// FanoutFractionBelow returns the fraction of calling functions whose
// distinct-callee count is strictly below k.
func (p *Profile) FanoutFractionBelow(k int) float64 {
	fan := p.FanoutDistinct()
	if len(fan) == 0 {
		return 0
	}
	below := 0
	for _, n := range fan {
		if n < k {
			below++
		}
	}
	return float64(below) / float64(len(fan))
}

// HottestEdges returns up to n call edges in descending weight order,
// for reports and tests.
func (p *Profile) HottestEdges(n int) []CallPair {
	type we struct {
		pair CallPair
		w    int64
	}
	all := make([]we, 0, len(p.CallEdges))
	for pair, w := range p.CallEdges {
		all = append(all, we{pair, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		if all[i].pair.Caller != all[j].pair.Caller {
			return all[i].pair.Caller < all[j].pair.Caller
		}
		return all[i].pair.Callee < all[j].pair.Callee
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]CallPair, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].pair
	}
	return out
}
