package program

import (
	"strings"
	"testing"
	"testing/quick"

	"cgp/internal/isa"
)

func buildRegistry() *Registry {
	reg := NewRegistry()
	reg.Register("a", 100)
	reg.Register("b", 200)
	reg.Register("c", 300)
	reg.Register("d", 50)
	return reg
}

func TestRegisterAndLookup(t *testing.T) {
	reg := buildRegistry()
	id, ok := reg.Lookup("b")
	if !ok || reg.Info(id).Size != 200 {
		t.Fatalf("lookup b = %v,%v", id, ok)
	}
	if reg.Len() != 4 {
		t.Errorf("len = %d", reg.Len())
	}
	if reg.Name(NoFunc) != "<none>" {
		t.Errorf("Name(NoFunc) = %q", reg.Name(NoFunc))
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	reg := buildRegistry()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate name")
		}
	}()
	reg.Register("a", 10)
}

func TestSizeScale(t *testing.T) {
	reg := NewRegistry()
	reg.SetSizeScale(3.0)
	id := reg.Register("x", 100)
	if got := reg.Info(id).Size; got != 300 {
		t.Errorf("scaled size = %d, want 300", got)
	}
}

func TestGenerateHelpers(t *testing.T) {
	reg := NewRegistry()
	big := reg.Register("big", 2000)
	small := reg.Register("small", 100)
	reg.GenerateHelpers(400, 700, 48, 200)
	bh := reg.Info(big).Helpers
	if len(bh) == 0 {
		t.Fatal("big function got no helpers")
	}
	if len(reg.Info(small).Helpers) != 0 {
		t.Error("small function got helpers")
	}
	for _, h := range bh {
		info := reg.Info(h)
		if info.Size < 48 || info.Size > 200 {
			t.Errorf("helper %s size %d out of range", info.Name, info.Size)
		}
		if !strings.HasPrefix(info.Name, "big.h") {
			t.Errorf("helper name %q", info.Name)
		}
		if len(info.Helpers) != 0 {
			t.Error("helper has helpers")
		}
	}
}

func TestHelpersNotSizeScaled(t *testing.T) {
	reg := NewRegistry()
	reg.SetSizeScale(8)
	reg.Register("big", 500) // becomes 4000
	reg.GenerateHelpers(400, 700, 48, 200)
	for _, f := range reg.Funcs() {
		if strings.Contains(f.Name, ".h") && f.Size > 200 {
			t.Errorf("helper %s size %d was scaled", f.Name, f.Size)
		}
	}
}

func checkImage(t *testing.T, im *Image, reg *Registry) {
	t.Helper()
	type span struct{ lo, hi isa.Addr }
	var spans []span
	for i := 0; i < reg.Len(); i++ {
		p := im.Placement(FuncID(i))
		if p.Start < isa.CodeBase {
			t.Fatalf("func %d below code base", i)
		}
		if p.Start%isa.LineBytes != 0 {
			t.Errorf("func %d start %#x not line-aligned", i, p.Start)
		}
		if p.SizeBytes != isa.InstrRangeBytes(reg.Info(FuncID(i)).Size) {
			t.Errorf("func %d size mismatch", i)
		}
		spans = append(spans, span{p.Start, p.End()})
	}
	for i, a := range spans {
		for j, b := range spans {
			if i != j && a.lo < b.hi && b.lo < a.hi {
				t.Fatalf("functions %d and %d overlap", i, j)
			}
		}
	}
}

func TestLayoutO5NoOverlap(t *testing.T) {
	reg := buildRegistry()
	im := LayoutO5(reg)
	checkImage(t, im, reg)
	if im.InstrScale != 1.0 {
		t.Errorf("O5 instr scale = %f", im.InstrScale)
	}
}

func TestLayoutO5HelpersAdjacent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Register("a", 2000)
	reg.Register("b", 2000)
	reg.GenerateHelpers(400, 700, 48, 200)
	im := LayoutO5(reg)
	// a's first helper must be laid out before b (file-local
	// placement), even though it was registered after b.
	bID, _ := reg.Lookup("b")
	h0 := reg.Info(a).Helpers[0]
	if im.Start(h0) > im.Start(bID) {
		t.Errorf("helper placed at %#x after next primary %#x", im.Start(h0), im.Start(bID))
	}
}

func TestLayoutOM(t *testing.T) {
	reg := buildRegistry()
	a, _ := reg.Lookup("a")
	b, _ := reg.Lookup("b")
	c, _ := reg.Lookup("c")
	prof := NewProfile()
	// Hot edge a->c: OM must place c right after a.
	for i := 0; i < 100; i++ {
		prof.AddCall(a, c)
	}
	prof.AddCall(a, b)
	im := LayoutOM(reg, prof)
	checkImage(t, im, reg)
	if im.InstrScale != OMInstrScale {
		t.Errorf("OM instr scale = %f", im.InstrScale)
	}
	pa, pc := im.Placement(a), im.Placement(c)
	if pc.Start != isa.AlignUp(pa.End(), isa.LineBytes) {
		t.Errorf("closest-is-best: c at %#x, a ends %#x", pc.Start, pa.End())
	}
	// Straightening: lower taken rate, wider branch spacing.
	if pa.TakenRate >= reg.Info(a).TakenRate {
		t.Error("OM did not straighten branches")
	}
	if pa.BranchEvery <= reg.Info(a).BranchEvery {
		t.Error("OM did not widen branch spacing")
	}
}

func TestLayoutOMColdCodeLast(t *testing.T) {
	reg := buildRegistry()
	a, _ := reg.Lookup("a")
	b, _ := reg.Lookup("b")
	prof := NewProfile()
	prof.AddCall(a, b) // c and d never executed
	im := LayoutOM(reg, prof)
	c, _ := reg.Lookup("c")
	d, _ := reg.Lookup("d")
	if im.Start(c) < im.Start(b) || im.Start(d) < im.Start(b) {
		t.Error("cold functions placed before hot chain")
	}
}

func TestFuncAt(t *testing.T) {
	reg := buildRegistry()
	im := LayoutO5(reg)
	a, _ := reg.Lookup("a")
	if got, ok := im.FuncAt(im.Start(a)); !ok || got != a {
		t.Errorf("FuncAt(start a) = %v,%v", got, ok)
	}
	if _, ok := im.FuncAt(im.Start(a) + 4); ok {
		t.Error("FuncAt mid-body reported a function")
	}
}

// Property: any profile yields an OM layout that is a permutation of
// all functions with no overlaps.
func TestLayoutOMPermutationProperty(t *testing.T) {
	f := func(edges []uint16) bool {
		reg := buildRegistry()
		reg.GenerateHelpers(100, 100, 48, 96)
		prof := NewProfile()
		n := reg.Len()
		for _, e := range edges {
			caller := FuncID(int(e>>8) % n)
			callee := FuncID(int(e&0xFF) % n)
			prof.AddCall(caller, callee)
		}
		im := LayoutOM(reg, prof)
		seen := map[isa.Addr]bool{}
		for i := 0; i < n; i++ {
			s := im.Start(FuncID(i))
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTotalSizeAndFootprint(t *testing.T) {
	reg := buildRegistry()
	im := LayoutO5(reg)
	if reg.TotalSize() != (100+200+300+50)*4 {
		t.Errorf("TotalSize = %d", reg.TotalSize())
	}
	if im.FootprintBytes() < reg.TotalSize() {
		t.Errorf("footprint %d smaller than code %d", im.FootprintBytes(), reg.TotalSize())
	}
	// Alignment waste is bounded by one line per function.
	if im.FootprintBytes() > reg.TotalSize()+reg.Len()*isa.LineBytes {
		t.Errorf("footprint %d too large", im.FootprintBytes())
	}
}
