// Package cgp reproduces "Call Graph Prefetching for Database
// Applications" (Annavaram, Patel, Davidson — HPCA 2001) as a
// self-contained simulation library.
//
// The package wires together three layers:
//
//   - A database system built from scratch (internal/db): a SHORE-style
//     storage manager (buffer pool, slotted pages, B+-trees, locking,
//     WAL) under a relational operator layer, instrumented so that
//     executing real queries emits an instruction-fetch trace.
//   - A trace-driven timing simulator (internal/cpu) with the paper's
//     Table-1 microarchitecture and its prefetch engines: next-N-line
//     (NL), run-ahead NL, and Call Graph Prefetching with its Call
//     Graph History Cache (internal/core).
//   - Workloads (internal/workload): the Wisconsin benchmark, a scaled
//     TPC-H, and synthetic SPEC CPU2000 stand-ins.
//
// The top-level API runs (workload, system configuration) pairs and
// regenerates every figure of the paper's evaluation:
//
//	r := cgp.NewRunner(cgp.RunnerOptions{})
//	res, err := r.Run(cgp.WiscLarge2(), cgp.Config{
//	    Layout:     cgp.LayoutOM,
//	    Prefetcher: cgp.PrefCGP,
//	    Degree:     4,
//	})
//	fmt.Println(res.Cycles, res.ICacheMisses)
//
// See Figure4 through Figure10 and RunAheadAblation for the full
// experiment harness, and cmd/experiments for the CLI that writes
// EXPERIMENTS.md.
package cgp
