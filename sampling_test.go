package cgp

// Differential validation of sampled simulation: the sampled estimator
// must track the full detailed simulation within its own reported
// confidence interval and under a 3% hard cap, across the prefetcher
// configuration space and multiple workload seeds — and sampled
// results must be byte-identical across worker counts and
// checkpoint/resume, exactly like full results.

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"cgp/internal/faultinject"
	"cgp/internal/sample"
	"cgp/internal/trace"
)

// samplingTestOpts is the differential-suite scale: large enough for
// the schedule below to place many measurement windows, small enough
// that 9 configs × 3 seeds × 2 arms stay fast under -race.
func samplingTestOpts(seed int64, workers int) RunnerOptions {
	return RunnerOptions{
		DB:      DBOptions{WiscN: 2000, Seed: seed},
		Seed:    seed,
		Workers: workers,
	}
}

// samplingTestSchedule measures a far larger fraction of the stream
// than a production campaign schedule would: the differential suite
// exists to bound estimator error tightly, not to demonstrate
// throughput (BENCH_sampling.json does that at campaign scale).
// Random offsets matter at this scale — the Wisconsin queries have
// per-tuple periodic structure that fixed window offsets alias with.
func samplingTestSchedule(seed int64) sample.Config {
	return sample.Config{
		PeriodEvents:         9_000,
		FunctionalWarmEvents: 500,
		DetailWarmEvents:     2_500,
		WindowEvents:         5_000,
		RandomOffset:         true,
		Seed:                 uint64(seed),
	}
}

// samplingDiffConfigs spans the configuration space the campaign
// grids exercise: both layouts, every hardware prefetcher, both CGP
// degrees, the demand-priority policy variant, and the perfect
// I-cache bound.
func samplingDiffConfigs() []Config {
	return []Config{
		{Layout: LayoutO5},
		{Layout: LayoutOM},
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefRunAheadNL, Degree: 4, RunAheadM: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 2},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
		{Layout: LayoutO5, Prefetcher: PrefCGP, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4, DemandPriority: true},
		{Layout: LayoutO5, PerfectICache: true},
	}
}

// TestSampledDifferential is the accuracy contract: for every config
// and seed, the sampled cycle estimate must sit within its own
// reported 95% CI of the full measurement AND within 3% absolute,
// instruction counts must match exactly (they are counted in every
// tier, never estimated), and the tiers must all actually run.
func TestSampledDifferential(t *testing.T) {
	for _, seed := range []int64{7, 42, 99} {
		r := NewRunner(samplingTestOpts(seed, 1))
		w := WiscLarge1(r.opts.DB)
		for _, cfg := range samplingDiffConfigs() {
			full, err := r.Run(context.Background(), w, cfg)
			if err != nil {
				t.Fatalf("seed %d %s full: %v", seed, cfg.Label(), err)
			}
			scfg := cfg
			scfg.Sampling = samplingTestSchedule(seed)
			smp, err := r.Run(context.Background(), w, scfg)
			if err != nil {
				t.Fatalf("seed %d %s sampled: %v", seed, cfg.Label(), err)
			}

			if full.CPU.Sample != nil {
				t.Fatalf("seed %d %s: full run carries sample stats — results aliased across fingerprints", seed, cfg.Label())
			}
			sm := smp.CPU.Sample
			if sm == nil {
				t.Fatalf("seed %d %s: sampled run has no sample stats", seed, cfg.Label())
			}
			if sm.Degenerate || sm.Windows < 2 {
				t.Fatalf("seed %d %s: degenerate sampled run (%d windows) — schedule too coarse for this trace",
					seed, cfg.Label(), sm.Windows)
			}
			if sm.SkippedEvents == 0 || sm.FastForwardedEvents == 0 || sm.MeasuredEvents == 0 {
				t.Errorf("seed %d %s: a tier never ran (skip=%d ff=%d measured=%d)",
					seed, cfg.Label(), sm.SkippedEvents, sm.FastForwardedEvents, sm.MeasuredEvents)
			}
			if smp.CPU.Instructions != full.CPU.Instructions {
				t.Errorf("seed %d %s: instructions %d sampled vs %d full — must be exact in every tier",
					seed, cfg.Label(), smp.CPU.Instructions, full.CPU.Instructions)
			}
			if int64(smp.CPU.Cycles) >= int64(full.CPU.Cycles) {
				t.Errorf("seed %d %s: sampled detailed cycles %d not below full %d — skip tier did no work",
					seed, cfg.Label(), smp.CPU.Cycles, full.CPU.Cycles)
			}

			e := relErr(int64(sm.EstCycles), int64(full.CPU.Cycles))
			if e > 0.03 {
				t.Errorf("seed %d %s: relative cycle error %.4f exceeds 3%% hard cap (est %d, full %d)",
					seed, cfg.Label(), e, int64(sm.EstCycles), full.CPU.Cycles)
			}
			if e > sm.CycleRelCI {
				t.Errorf("seed %d %s: relative cycle error %.4f outside reported 95%% CI ±%.4f (%d windows)",
					seed, cfg.Label(), e, sm.CycleRelCI, sm.Windows)
			}
		}
	}
}

// sampledGrid builds the sampled differential grid as RunAll jobs.
func sampledGrid(r *Runner, seed int64) []Job {
	w := WiscLarge1(r.opts.DB)
	var jobs []Job
	for _, cfg := range samplingDiffConfigs() {
		cfg.Sampling = samplingTestSchedule(seed)
		jobs = append(jobs, Job{Workload: w, Config: cfg})
	}
	return jobs
}

// TestSampledWorkerInvariance: a sampled campaign is byte-identical
// whether it runs on one worker or many — including with seeded
// random window offsets, which must depend only on the schedule seed,
// never on scheduling order.
func TestSampledWorkerInvariance(t *testing.T) {
	const seed = 42
	one := NewRunner(samplingTestOpts(seed, 1))
	want, err := one.RunAll(context.Background(), sampledGrid(one, seed))
	if err != nil {
		t.Fatal(err)
	}
	many := NewRunner(samplingTestOpts(seed, 8))
	got, err := many.RunAll(context.Background(), sampledGrid(many, seed))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		a, _ := json.Marshal(want[i])
		b, _ := json.Marshal(got[i])
		if !bytes.Equal(a, b) {
			t.Errorf("job %d (%s) differs between 1 and 8 workers:\n1: %s\n8: %s",
				i, want[i].Config, a, b)
		}
	}
}

// TestSampledCheckpointResume: sampled cells checkpoint and resume
// like full cells — a fresh runner whose every simulation would panic
// must serve the whole sampled grid byte-identically from disk. The
// sampling schedule is part of the config fingerprint, so sampled
// checkpoints can never satisfy full runs or vice versa.
func TestSampledCheckpointResume(t *testing.T) {
	const seed = 7
	dir := t.TempDir()
	opts := samplingTestOpts(seed, 4)
	opts.CheckpointDir = dir

	first := NewRunner(opts)
	want, err := first.RunAll(context.Background(), sampledGrid(first, seed))
	if err != nil {
		t.Fatal(err)
	}

	resumed := NewRunner(opts)
	resumed.hooks.wrapConsumer = func(w *Workload, cfg Config, c trace.Consumer) trace.Consumer {
		return faultinject.PanicAfter(c, 1, "should-not-simulate")
	}
	got, err := resumed.RunAll(context.Background(), sampledGrid(resumed, seed))
	if err != nil {
		t.Fatalf("resume simulated instead of loading checkpoints: %v", err)
	}
	for i := range want {
		a, _ := json.Marshal(want[i])
		b, _ := json.Marshal(got[i])
		if !bytes.Equal(a, b) {
			t.Errorf("job %d (%s) differs between original and resumed run", i, want[i].Config)
		}
	}

	// The unsampled twin of a checkpointed sampled config is a cache
	// miss: the resumed runner (which cannot simulate) must fail it.
	w := WiscLarge1(resumed.opts.DB)
	if _, ok := resumed.loadCheckpoint(w, samplingDiffConfigs()[0].withDefaults()); ok {
		t.Fatal("full-run checkpoint served from a sampled campaign")
	}
}
