package cgp

import (
	"context"
	"fmt"

	"cgp/internal/workload"
)

// The ablation studies extend the paper's evaluation along the design
// axes §3 fixes by fiat: CGHC associativity and entry width, the
// no-priority L2 FIFO, prefetching into L1I vs L2, and the §6
// all-software CGP variant.

// cghcLabel labels grid rows by CGHC geometry instead of config Label.
func cghcLabel(c Config) string { return c.CGHC.String() }

// CGHCWaysAblation compares the paper's direct-mapped CGHC against
// 2-way and 4-way variants. The small 1KB single-level CGHC is used
// because that is where tag conflicts actually occur (the preferred
// 2K+32K configuration has so few conflicts that associativity is
// irrelevant — itself a finding that supports the paper's
// direct-mapped choice, §3.2).
func (r *Runner) CGHCWaysAblation(ctx context.Context) (*Figure, error) {
	return r.runGridLabeled(ctx, "abl-ways", "CGHC associativity ablation (CGP_4, 1K single-level)",
		r.DBWorkloads(), ablWaysConfigs(), cghcLabel)
}

// ablWaysConfigs are the associativity ablation's three design points.
func ablWaysConfigs() []Config {
	var configs []Config
	for _, ways := range []int{1, 2, 4} {
		configs = append(configs, Config{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4,
			CGHC: CGHCConfig{L1Bytes: 1024, Ways: ways}})
	}
	return configs
}

// CGHCSlotsAblation varies the callee slots per CGHC entry (the paper
// picks 8 from the ATOM fanout measurement).
func (r *Runner) CGHCSlotsAblation(ctx context.Context) (*Figure, error) {
	return r.runGridLabeled(ctx, "abl-slots", "CGHC entry-width ablation (CGP_4, 2K+32K)",
		r.DBWorkloads(), ablSlotsConfigs(), cghcLabel)
}

// ablSlotsConfigs are the entry-width ablation's three design points.
func ablSlotsConfigs() []Config {
	var configs []Config
	for _, slots := range []int{2, 4, 8} {
		configs = append(configs, Config{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4,
			CGHC: CGHCConfig{L1Bytes: 2 * 1024, L2Bytes: 32 * 1024, Slots: slots}})
	}
	return configs
}

// FIFOPolicyAblation tests the §3.3 simplifications: giving demand
// misses priority over prefetches, and staging prefetches in L2 instead
// of filling L1I directly.
func (r *Runner) FIFOPolicyAblation(ctx context.Context) (*Figure, error) {
	return r.runGrid(ctx, "abl-policy", "L2 interface policy ablation (§3.3 choices)",
		r.DBWorkloads(), ablPolicyConfigs())
}

// ablPolicyConfigs are the §3.3 policy ablation's three design points.
func ablPolicyConfigs() []Config {
	return []Config{
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4, DemandPriority: true},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4, PrefetchIntoL2Only: true},
	}
}

// SoftwareCGPAblation compares hardware CGP against the §6 software
// variant (static profile-derived tables, no CGHC) and NL.
func (r *Runner) SoftwareCGPAblation(ctx context.Context) (*Figure, error) {
	return r.runGrid(ctx, "abl-swcgp", "Software CGP (§6 variant) vs hardware CGP",
		r.DBWorkloads(), ablSwcgpConfigs())
}

// ablSwcgpConfigs are the software-CGP ablation's three design points.
func ablSwcgpConfigs() []Config {
	return []Config{
		{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefSoftwareCGP, Degree: 4},
		{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4},
	}
}

// ExtensionFigures runs every ablation study. Like AllFigures, the
// generators run concurrently with deterministic results.
func (r *Runner) ExtensionFigures(ctx context.Context) ([]*Figure, error) {
	return runFigureGens(ctx, []figureGen{
		{"abl-ways", r.CGHCWaysAblation},
		{"abl-slots", r.CGHCSlotsAblation},
		{"abl-policy", r.FIFOPolicyAblation},
		{"abl-swcgp", r.SoftwareCGPAblation},
		{"abl-degree", r.DegreeSweep},
		{"abl-quantum", r.QuantumSweep},
	})
}

// DegreeSweep extends Figures 4/6 along the N axis: the paper evaluates
// CGP_2 and CGP_4; this sweeps N in {1, 2, 4, 8} to expose the
// timeliness-vs-pollution trade-off.
func (r *Runner) DegreeSweep(ctx context.Context) (*Figure, error) {
	return r.runGrid(ctx, "abl-degree", "CGP_N degree sweep (OM binary)", r.DBWorkloads(), ablDegreeConfigs())
}

// ablDegreeConfigs are the degree sweep's four design points.
func ablDegreeConfigs() []Config {
	var configs []Config
	for _, n := range []int{1, 2, 4, 8} {
		configs = append(configs, Config{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: n})
	}
	return configs
}

// QuantumSweep varies the scheduler's context-switch quantum on
// wisc-large-2 (OM binary, no prefetching). The paper's premise (§2,
// citing Franklin et al.) is that frequent context switches inflate
// database I-cache miss rates; the sweep makes that mechanism visible:
// smaller quanta mean more switches and more misses per instruction.
func (r *Runner) QuantumSweep(ctx context.Context) (*Figure, error) {
	fig := &Figure{ID: "abl-quantum", Title: "Context-switch quantum sensitivity (wisc-large-2, OM)", Baseline: "quantum-2"}
	var base int64
	for i, q := range QuantumSweepQuanta() {
		res, err := r.RunQuantumCell(ctx, q)
		if err != nil {
			return nil, err
		}
		cycles, estimated, relCI := resultCycles(res)
		if i == 0 {
			base = cycles
		}
		fig.Rows = append(fig.Rows, Row{
			Workload: "wisc-large-2", Config: fmt.Sprintf("quantum-%d", q),
			Cycles: cycles, Misses: rowMisses(res),
			Speedup:   float64(base) / float64(cycles),
			Estimated: estimated, CyclesCI: relCI, Result: res,
		})
	}
	return fig, nil
}

// QuantumSweepQuanta lists the scheduler quanta the sweep visits, in
// figure order.
func QuantumSweepQuanta() []int { return []int{2, 7, 28, 112} }

// RunQuantumCell simulates one quantum-sweep cell: wisc-large-2 on the
// OM binary with the scheduler quantum overridden to q. Each quantum
// is a distinct workload configuration, so a fresh sub-runner keeps
// the result cache honest while sharing this runner's feedback
// profile, checkpoint directory and record stream. The parent profile
// is forced first so the sweep sees the same OM layout whether it runs
// alone or concurrently with other figure generators. It is exported
// (separately from QuantumSweep) so a campaign worker can compute a
// single quantum cell — the sub-runner's checkpoint scope embeds the
// overridden quantum, which is how the cells of different quanta stay
// distinct on disk even though they share a run key.
func (r *Runner) RunQuantumCell(ctx context.Context, q int) (*Result, error) {
	parentProf, err := r.profilesFor(ctx, r.DBWorkloads()[0])
	if err != nil {
		return nil, err
	}
	// abl-quantum is not in the default sampled set (each quantum is a
	// one-off workload, so there is no campaign to amortize over), but
	// an explicit SampledFigures entry is honored.
	scfg := r.opts.samplingFor("abl-quantum")
	opts := r.opts.DB
	opts.Quantum = q
	// Each sub-runner performs a single simulation, so recording a
	// trace it would replay zero times is pure overhead: re-execute.
	// (A sampled cell records regardless — skipping needs a sealed
	// recording.)
	sub := NewRunner(RunnerOptions{DB: opts, Seed: r.opts.Seed, Log: r.opts.Log,
		Workers: 1, NoRecord: true, CheckpointDir: r.opts.CheckpointDir,
		OnRecord: r.opts.OnRecord})
	sub.seed(dbProfilesKey, parentProf)
	return sub.Run(ctx, workload.WiscLarge2(opts), Config{Layout: LayoutOM, Sampling: scfg})
}
