package cgp

import (
	"context"
	"strings"
	"testing"

	"cgp/internal/workload"
)

// smallRunner keeps end-to-end tests fast: a few hundred tuples is
// enough to exercise every code path.
func smallRunner() *Runner {
	return NewRunner(RunnerOptions{
		DB: DBOptions{
			WiscN: 600, Quantum: 5, Seed: 11, BufferFrames: 4096,
			TPCH: workload.TPCHScale{Suppliers: 10, Customers: 40, Parts: 60, Orders: 150, MaxLines: 4},
		},
		Seed: 11,
	})
}

func TestConfigLabels(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Layout: LayoutO5}, "O5"},
		{Config{Layout: LayoutOM}, "O5+OM"},
		{Config{Layout: LayoutO5, Prefetcher: PrefCGP, Degree: 4}, "O5+CGP_4"},
		{Config{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 2}, "O5+OM+NL_2"},
		{Config{Layout: LayoutOM, Prefetcher: PrefRunAheadNL, Degree: 4}, "O5+OM+RANL_4"},
		{Config{Layout: LayoutOM, PerfectICache: true}, "perf-Icache"},
		{Config{Layout: LayoutOM, Prefetcher: PrefCGP}, "O5+OM+CGP_4"}, // default degree
	}
	for _, c := range cases {
		if got := c.cfg.Label(); got != c.want {
			t.Errorf("Label(%+v) = %q, want %q", c.cfg, got, c.want)
		}
	}
}

func TestCGHCConfigString(t *testing.T) {
	cases := []struct {
		cfg  CGHCConfig
		want string
	}{
		{CGHCConfig{L1Bytes: 1024}, "CGHC-1K"},
		{CGHCConfig{L1Bytes: 2048, L2Bytes: 32768}, "CGHC-2K+32K"},
		{CGHCConfig{Infinite: true}, "CGHC-Inf"},
	}
	for _, c := range cases {
		if got := c.cfg.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// TestPaperOrderings is the headline integration test: on a scaled-down
// wisc-large-2, the paper's qualitative orderings must hold.
func TestPaperOrderings(t *testing.T) {
	r := smallRunner()
	w := WiscLarge2(r.opts.DB)

	get := func(cfg Config) *Result {
		t.Helper()
		res, err := r.Run(context.Background(), w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	o5 := get(Config{Layout: LayoutO5})
	om := get(Config{Layout: LayoutOM})
	nl4 := get(Config{Layout: LayoutOM, Prefetcher: PrefNL, Degree: 4})
	cgp4 := get(Config{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4})
	cgpO5 := get(Config{Layout: LayoutO5, Prefetcher: PrefCGP, Degree: 4})
	ranl := get(Config{Layout: LayoutOM, Prefetcher: PrefRunAheadNL, Degree: 4})
	perfect := get(Config{Layout: LayoutOM, PerfectICache: true})

	// Cycle orderings (Figures 4 and 6).
	type rel struct {
		slow, fast *Result
		what       string
	}
	for _, c := range []rel{
		{o5, om, "OM beats O5"},
		{om, nl4, "OM+NL beats OM"},
		{nl4, cgp4, "OM+CGP beats OM+NL"},
		{cgp4, perfect, "perfect I-cache beats OM+CGP"},
		{o5, cgpO5, "CGP alone beats O5"},
		{ranl, nl4, "NL beats run-ahead NL"},
	} {
		if c.slow.CPU.Cycles <= c.fast.CPU.Cycles {
			t.Errorf("%s violated: %d <= %d", c.what, c.slow.CPU.Cycles, c.fast.CPU.Cycles)
		}
	}

	// Miss orderings (Figure 7).
	if !(o5.CPU.ICacheMisses > om.CPU.ICacheMisses &&
		om.CPU.ICacheMisses > nl4.CPU.ICacheMisses &&
		nl4.CPU.ICacheMisses > cgp4.CPU.ICacheMisses) {
		t.Errorf("miss ordering violated: %d / %d / %d / %d",
			o5.CPU.ICacheMisses, om.CPU.ICacheMisses, nl4.CPU.ICacheMisses, cgp4.CPU.ICacheMisses)
	}
	if perfect.CPU.ICacheMisses != 0 {
		t.Errorf("perfect I-cache missed %d times", perfect.CPU.ICacheMisses)
	}

	// Work conservation: all configs execute the same workload. O5 and
	// OM differ by the 12% instruction reduction; within one layout the
	// instruction count is identical.
	if om.CPU.Instructions != cgp4.CPU.Instructions || om.CPU.Instructions != perfect.CPU.Instructions {
		t.Errorf("instruction counts differ within OM layout: %d / %d / %d",
			om.CPU.Instructions, cgp4.CPU.Instructions, perfect.CPU.Instructions)
	}
	ratio := float64(om.CPU.Instructions) / float64(o5.CPU.Instructions)
	if ratio < 0.82 || ratio > 0.94 {
		t.Errorf("OM/O5 instruction ratio %.3f, want ~0.88", ratio)
	}

	// CGP's CGHC portion must be live and more accurate than useless.
	if cgp4.CPU.CGHC.Issued == 0 {
		t.Error("CGHC portion issued nothing")
	}
	if cgp4.CGPStats == nil || cgp4.CGPStats.History.PrefetchHits == 0 {
		t.Error("CGHC never hit")
	}
}

func TestResultCaching(t *testing.T) {
	r := smallRunner()
	w := WiscProf(r.opts.DB)
	a, err := r.Run(context.Background(), w, Config{Layout: LayoutO5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(context.Background(), w, Config{Layout: LayoutO5})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical runs not cached")
	}
	// Different CGHC configs share a label prefix but must not collide.
	c1, err := r.Run(context.Background(), w, Config{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4, CGHC: CGHCConfig{L1Bytes: 1024}})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := r.Run(context.Background(), w, Config{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4, CGHC: CGHCConfig{Infinite: true}})
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Error("distinct CGHC configs collided in the cache")
	}
}

func TestDeterministicResults(t *testing.T) {
	a, err := smallRunner().Run(context.Background(), WiscProf(smallRunner().opts.DB), Config{Layout: LayoutOM, Prefetcher: PrefCGP})
	if err != nil {
		t.Fatal(err)
	}
	b, err := smallRunner().Run(context.Background(), WiscProf(smallRunner().opts.DB), Config{Layout: LayoutOM, Prefetcher: PrefCGP})
	if err != nil {
		t.Fatal(err)
	}
	if a.CPU.Cycles != b.CPU.Cycles || a.CPU.ICacheMisses != b.CPU.ICacheMisses {
		t.Errorf("fresh runners disagree: %d/%d vs %d/%d",
			a.CPU.Cycles, a.CPU.ICacheMisses, b.CPU.Cycles, b.CPU.ICacheMisses)
	}
}

func TestCallFanoutStats(t *testing.T) {
	r := smallRunner()
	fan, err := r.CallFanoutStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fan.CallingFunctions == 0 {
		t.Fatal("no calling functions in profile")
	}
	// §3.2: 80% of functions call fewer than 8 distinct functions.
	if fan.FractionBelow8 < 0.5 {
		t.Errorf("fanout fraction below 8 = %.2f", fan.FractionBelow8)
	}
	// §5.4: ~43 instructions between calls.
	if fan.InstrPerCall < 25 || fan.InstrPerCall > 70 {
		t.Errorf("instructions/call = %.1f", fan.InstrPerCall)
	}
}

func TestCPU2000Lookup(t *testing.T) {
	if _, err := CPU2000("gcc", 1); err != nil {
		t.Error(err)
	}
	if _, err := CPU2000("nope", 1); err == nil {
		t.Error("unknown benchmark succeeded")
	}
}

func TestFigureGeneration(t *testing.T) {
	r := smallRunner()
	fig, err := r.Figure7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 4*4 {
		t.Fatalf("fig7 rows = %d, want 16", len(fig.Rows))
	}
	if got := fig.SummarizeConfigs(); len(got) != 4 || got[0] != "O5" {
		t.Errorf("configs = %v", got)
	}
	if got := fig.Workloads(); len(got) != 4 || got[0] != "wisc-prof" {
		t.Errorf("workloads = %v", got)
	}
	md := fig.Markdown()
	if !strings.Contains(md, "wisc-large-2") || !strings.Contains(md, "| O5+OM+CGP_4 |") {
		t.Errorf("markdown incomplete:\n%s", md)
	}
	// Miss fractions must be ordered like the paper's Figure 7.
	mOM := fig.MeanMissFraction("O5+OM")
	mNL := fig.MeanMissFraction("O5+OM+NL_4")
	mCGP := fig.MeanMissFraction("O5+OM+CGP_4")
	if !(mOM < 1 && mNL < mOM && mCGP < mNL) {
		t.Errorf("miss fractions not ordered: %.2f %.2f %.2f", mOM, mNL, mCGP)
	}
}

// TestFigureBytesReproducible asserts the full rendering pipeline —
// simulation, table layout (report.go) and ASCII chart (chart.go) — is
// byte-identical across two independent runners. Any map-iteration
// order leaking into the output (the class of bug cgplint's maporder
// pass guards against) shows up here as a byte diff.
func TestFigureBytesReproducible(t *testing.T) {
	render := func() (string, string) {
		fig, err := smallRunner().Figure7(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return fig.Markdown(), fig.Chart()
	}
	md1, ch1 := render()
	md2, ch2 := render()
	if md1 != md2 {
		t.Errorf("markdown not byte-identical across fresh runners:\n--- first ---\n%s\n--- second ---\n%s", md1, md2)
	}
	if ch1 != ch2 {
		t.Errorf("chart not byte-identical across fresh runners:\n--- first ---\n%s\n--- second ---\n%s", ch1, ch2)
	}
}

func TestFigure9PortionSplit(t *testing.T) {
	r := smallRunner()
	fig, err := r.Figure9(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 8 { // 4 workloads x 2 portions
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	nl := fig.MeanUsefulFraction("CGP_4/NL-portion")
	cghc := fig.MeanUsefulFraction("CGP_4/CGHC-portion")
	if cghc <= nl {
		t.Errorf("CGHC portion (%.2f) not more accurate than NL portion (%.2f)", cghc, nl)
	}
}

func TestGeoSpeedup(t *testing.T) {
	fig := &Figure{Baseline: "base", Rows: []Row{
		{Workload: "a", Config: "x", Speedup: 2},
		{Workload: "b", Config: "x", Speedup: 8},
	}}
	if got := fig.GeoSpeedup("x"); got != 4 {
		t.Errorf("geomean = %f, want 4", got)
	}
	if got := fig.GeoSpeedup("missing"); got != 0 {
		t.Errorf("missing config geomean = %f", got)
	}
}

func TestDefaultCPUConfigIsTable1(t *testing.T) {
	cfg := DefaultCPUConfig()
	if cfg.FetchWidth != 4 {
		t.Errorf("fetch width = %d", cfg.FetchWidth)
	}
	if cfg.L1I.SizeBytes != 32*1024 || cfg.L1I.Assoc != 2 || cfg.L1I.LineBytes != 32 {
		t.Errorf("L1I = %+v", cfg.L1I)
	}
	if cfg.L1D.SizeBytes != 32*1024 || cfg.L1D.Assoc != 2 {
		t.Errorf("L1D = %+v", cfg.L1D)
	}
	if cfg.L2.SizeBytes != 1024*1024 || cfg.L2.Assoc != 4 {
		t.Errorf("L2 = %+v", cfg.L2)
	}
	if cfg.L1Latency != 1 || cfg.L2Latency != 16 || cfg.MemLatency != 80 {
		t.Errorf("latencies = %d/%d/%d", cfg.L1Latency, cfg.L2Latency, cfg.MemLatency)
	}
	if cfg.BranchEntries != 2048 {
		t.Errorf("branch entries = %d", cfg.BranchEntries)
	}
}

func TestFigure5CGHCOrdering(t *testing.T) {
	r := smallRunner()
	fig, err := r.Figure5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 4*5 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	// The 1KB CGHC is the weakest finite configuration on average
	// (Figure 5's finding); the preferred 2K+32K is within a few
	// percent of infinite.
	oneK := fig.GeoSpeedup("CGHC-1K") // == 1.0, the baseline
	twoL := fig.GeoSpeedup("CGHC-2K+32K")
	inf := fig.GeoSpeedup("CGHC-Inf")
	if twoL < oneK {
		t.Errorf("2K+32K (%.3f) slower than 1K (%.3f)", twoL, oneK)
	}
	if twoL < inf*0.97 {
		t.Errorf("2K+32K (%.3f) not within a few %% of infinite (%.3f)", twoL, inf)
	}
}

func TestFigure8UsefulFractions(t *testing.T) {
	r := smallRunner()
	fig, err := r.Figure8(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range fig.SummarizeConfigs() {
		u := fig.MeanUsefulFraction(cfg)
		if u <= 0.2 || u >= 0.98 {
			t.Errorf("%s useful fraction %.2f implausible", cfg, u)
		}
	}
	// Degree 4 issues more useless prefetches than degree 2 (Figure 8).
	var nl2, nl4 int64
	for _, row := range fig.Rows {
		switch row.Config {
		case "O5+OM+NL_2":
			nl2 += row.Useless
		case "O5+OM+NL_4":
			nl4 += row.Useless
		}
	}
	if nl4 <= nl2 {
		t.Errorf("NL_4 useless (%d) not above NL_2 (%d)", nl4, nl2)
	}
}

func TestFigure10Shapes(t *testing.T) {
	r := smallRunner()
	fig, err := r.Figure10(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(fig.Workloads()); got != 7 {
		t.Fatalf("workloads = %d", got)
	}
	speedup := func(w, cfg string) float64 {
		for _, row := range fig.RowsFor(w) {
			if row.Config == cfg {
				return row.Speedup
			}
		}
		return 0
	}
	// gzip and bzip2 are insensitive; gcc gains the most.
	for _, w := range []string{"gzip", "bzip2"} {
		if s := speedup(w, "O5+OM+CGP_4"); s > 1.05 {
			t.Errorf("%s moved %.3fx under CGP (should be insensitive)", w, s)
		}
	}
	if s := speedup("gcc", "O5+OM+CGP_4"); s < 1.04 {
		t.Errorf("gcc speedup %.3f, expected a visible gain", s)
	}
	// NL ~ CGP on gcc (§5.7).
	nl, cgp4 := speedup("gcc", "O5+OM+NL_4"), speedup("gcc", "O5+OM+CGP_4")
	if cgp4/nl > 1.10 || nl/cgp4 > 1.10 {
		t.Errorf("gcc: NL %.3f vs CGP %.3f diverge (paper: similar)", nl, cgp4)
	}
}

func TestChartRenders(t *testing.T) {
	r := smallRunner()
	fig, err := r.Figure7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	chart := fig.Chart()
	if !strings.Contains(chart, "wisc-large-2") || !strings.Contains(chart, "#") {
		t.Errorf("chart incomplete:\n%s", chart)
	}
}
