package cgp

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"cgp/internal/obs"
)

// obsOpts is harnessOpts with full observability attached: every
// component enabled, the run log writing into logBuf, and attribution
// collected on every CPU.
func obsOpts(workers int, logBuf *bytes.Buffer) RunnerOptions {
	o := harnessOpts(workers, false)
	o.Obs = obs.New().AttachLog(logBuf)
	o.Attribution = true
	return o
}

// TestObsDoesNotChangeFigures is the quarantine regression the
// observability layer is built around: with every component enabled —
// metrics, spans, run log, progress, attribution — the figure bodies
// must be byte-identical to a run with observability disabled. Wall
// facts may differ run to run; nothing in a report may.
func TestObsDoesNotChangeFigures(t *testing.T) {
	plain := NewRunner(harnessOpts(4, false))
	want, err := plain.Figure4(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var logBuf bytes.Buffer
	full := NewRunner(obsOpts(4, &logBuf))
	got, err := full.Figure4(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if want.Markdown() != got.Markdown() {
		t.Errorf("figure markdown differs with observability enabled:\nplain:\n%s\nobserved:\n%s",
			want.Markdown(), got.Markdown())
	}
	a, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("figure JSON differs with observability enabled:\nplain: %s\nobserved: %s", a, b)
	}

	// The observability layer must actually have been exercised, or the
	// comparison above proves nothing.
	o := full.opts.Obs
	if o.Spans.Len() == 0 {
		t.Error("no spans recorded by an instrumented campaign")
	}
	if logBuf.Len() == 0 {
		t.Error("no run log entries emitted by an instrumented campaign")
	}
	if o.Det.Counter("sim_jobs").Value() == 0 {
		t.Error("deterministic registry saw no completed jobs")
	}
}

// TestObsDetDomainDeterministic: two identical campaigns produce
// byte-identical deterministic-domain expositions, however their hosts
// scheduled the work.
func TestObsDetDomainDeterministic(t *testing.T) {
	run := func(workers int) string {
		var logBuf bytes.Buffer
		r := NewRunner(obsOpts(workers, &logBuf))
		if _, err := r.RunAll(context.Background(), fig4Jobs(r)); err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := r.opts.Obs.Det.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	seq := run(1)
	par := run(8)
	if seq != par {
		t.Errorf("deterministic metrics differ between 1 and 8 workers:\nseq:\n%s\npar:\n%s", seq, par)
	}
	if !strings.Contains(seq, "sim_jobs 24") {
		t.Errorf("expected 24 completed jobs in det exposition, got:\n%s", seq)
	}
}

// TestObsCampaignArtifacts: a campaign's Chrome trace export and run
// log both pass their validators, and the log tells the full lifecycle
// story (every job queued, every cell either executed or served from
// the singleflight cache).
func TestObsCampaignArtifacts(t *testing.T) {
	var logBuf bytes.Buffer
	r := NewRunner(obsOpts(4, &logBuf))
	jobs := fig4Jobs(r)
	if _, err := r.RunAll(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	// A single uncached Run goes through the per-cell replay path, which
	// emits a "run" span (batched campaigns emit "replay" spans instead).
	w := r.DBWorkloads()[0]
	if _, err := r.Run(context.Background(), w, Config{Layout: LayoutO5, Prefetcher: PrefNL, Degree: 2}); err != nil {
		t.Fatal(err)
	}

	var traceBuf bytes.Buffer
	if err := r.opts.Obs.Spans.WriteChromeTrace(&traceBuf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(traceBuf.Bytes()); err != nil {
		t.Errorf("campaign trace fails validation: %v", err)
	}
	trace := traceBuf.String()
	for _, phase := range []string{`"record"`, `"run"`, `"verify"`, `"replay"`} {
		if !strings.Contains(trace, phase) {
			t.Errorf("campaign trace has no %s span", phase)
		}
	}

	entries, err := obs.ValidateRunLog(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatalf("run log fails validation: %v", err)
	}
	// Every job was queued; every distinct cell settled exactly once.
	queued := map[string]int{}
	settled := map[string]int{}
	for _, e := range entries {
		key := e.Workload + "/" + e.Config
		switch obs.JobState(e.Event) {
		case obs.JobQueued:
			queued[key]++
		case obs.JobExecuted, obs.JobReplayed, obs.JobResumed:
			settled[key]++
		}
	}
	cells := map[string]bool{}
	for _, j := range jobs {
		key := j.Workload.Name + "/" + j.Config.withDefaults().Label()
		cells[key] = true
		if queued[key] == 0 {
			t.Errorf("job %s never queued", key)
		}
	}
	// The extra single Run settles too (it is never queued — queueing is
	// a campaign notion).
	cells[w.Name+"/"+Config{Layout: LayoutO5, Prefetcher: PrefNL, Degree: 2}.withDefaults().Label()] = true
	for key := range cells {
		if settled[key] == 0 {
			t.Errorf("cell %s never settled (executed/replayed/resumed)", key)
		}
	}
	if r.opts.Obs.Log.Err() != nil {
		t.Errorf("run log error: %v", r.opts.Obs.Log.Err())
	}

	// Progress agrees with the log: every cell is in a settled state.
	snap := r.opts.Obs.Progress.Snapshot()
	if len(snap.Jobs) != len(cells) {
		t.Errorf("progress tracks %d jobs, want %d distinct cells", len(snap.Jobs), len(cells))
	}
	for _, jp := range snap.Jobs {
		switch obs.JobState(jp.State) {
		case obs.JobExecuted, obs.JobReplayed, obs.JobResumed:
		default:
			t.Errorf("cell %s/%s left in state %q", jp.Workload, jp.Config, jp.State)
		}
	}
}

// TestAttributionTable exercises the top-N per-function table: rows
// resolve to registry names, rank by prefetch-relevant demand, and the
// markdown rendering carries them.
func TestAttributionTable(t *testing.T) {
	var logBuf bytes.Buffer
	r := NewRunner(obsOpts(2, &logBuf))
	w := r.DBWorkloads()[0]
	cfg := Config{Layout: LayoutOM, Prefetcher: PrefCGP, Degree: 4}

	tab, err := r.AttributionTable(context.Background(), w, cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("attribution table has no rows")
	}
	if tab.TotalFuncs < len(tab.Rows) {
		t.Errorf("TotalFuncs %d < rendered rows %d", tab.TotalFuncs, len(tab.Rows))
	}
	named := 0
	for i := range tab.Rows {
		row := &tab.Rows[i]
		if row.Name == "" {
			t.Fatalf("row %d has no name", i)
		}
		if !strings.HasPrefix(row.Name, "0x") && row.Name != "(pre-main)" {
			named++
		}
		if i > 0 && attrDemand(&row.FuncAttribution) > attrDemand(&tab.Rows[i-1].FuncAttribution) {
			t.Errorf("rows not ranked by demand at %d", i)
		}
	}
	if named == 0 {
		t.Error("no attribution row resolved to a registry function name")
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| function |") || !strings.Contains(md, tab.Rows[0].Name) {
		t.Errorf("markdown rendering missing table or top row:\n%s", md)
	}

	// Without Attribution set the table is refused, not silently empty.
	plain := NewRunner(harnessOpts(1, false))
	if _, err := plain.AttributionTable(context.Background(), w, cfg, 10); err == nil {
		t.Error("AttributionTable without RunnerOptions.Attribution should fail")
	}
}
