package cgp

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"cgp/internal/cache"
	"cgp/internal/core"
	"cgp/internal/cpu"
	"cgp/internal/isa"
	"cgp/internal/prefetch"
	"cgp/internal/program"
	"cgp/internal/trace"
	"cgp/internal/units"
	"cgp/internal/workload"
)

// benchRunner runs the figures at a reduced (but non-trivial) scale so
// the full suite completes in minutes. Paper-scale numbers come from
// cmd/experiments.
func benchRunner() *Runner {
	return NewRunner(RunnerOptions{
		DB: DBOptions{
			WiscN: 1500, Quantum: 7, Seed: 42, BufferFrames: 8192,
			TPCH: workload.TPCHScale{Suppliers: 16, Customers: 80, Parts: 120, Orders: 320, MaxLines: 5},
		},
		Seed: 42,
	})
}

// reportFigure surfaces the figure's headline ratios as benchmark
// metrics.
func reportFigure(b *testing.B, fig *Figure, metrics map[string]func(*Figure) float64) {
	b.Helper()
	for name, fn := range metrics {
		b.ReportMetric(fn(fig), name)
	}
}

// BenchmarkFigure4 regenerates the O5 / OM / CGP cycle comparison.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		fig, err := r.Figure4(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, fig, map[string]func(*Figure) float64{
			"speedup/OM":      func(f *Figure) float64 { return f.GeoSpeedup("O5+OM") },
			"speedup/CGP4":    func(f *Figure) float64 { return f.GeoSpeedup("O5+CGP_4") },
			"speedup/OM+CGP4": func(f *Figure) float64 { return f.GeoSpeedup("O5+OM+CGP_4") },
		})
	}
}

// BenchmarkFigure5 regenerates the CGHC size sweep.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		fig, err := r.Figure5(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, fig, map[string]func(*Figure) float64{
			"speedup/CGHC-2K+32K": func(f *Figure) float64 { return f.GeoSpeedup("CGHC-2K+32K") },
			"speedup/CGHC-Inf":    func(f *Figure) float64 { return f.GeoSpeedup("CGHC-Inf") },
		})
	}
}

// BenchmarkFigure6 regenerates the NL vs CGP comparison.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		fig, err := r.Figure6(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, fig, map[string]func(*Figure) float64{
			"speedup/OM+NL4":  func(f *Figure) float64 { return f.GeoSpeedup("O5+OM+NL_4") },
			"speedup/OM+CGP4": func(f *Figure) float64 { return f.GeoSpeedup("O5+OM+CGP_4") },
			"speedup/perfect": func(f *Figure) float64 { return f.GeoSpeedup("perf-Icache") },
		})
	}
}

// BenchmarkFigure7 regenerates the I-cache miss comparison.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		fig, err := r.Figure7(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, fig, map[string]func(*Figure) float64{
			"missfrac/OM":      func(f *Figure) float64 { return f.MeanMissFraction("O5+OM") },
			"missfrac/OM+NL4":  func(f *Figure) float64 { return f.MeanMissFraction("O5+OM+NL_4") },
			"missfrac/OM+CGP4": func(f *Figure) float64 { return f.MeanMissFraction("O5+OM+CGP_4") },
		})
	}
}

// BenchmarkFigure8 regenerates the prefetch effectiveness breakdown.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		fig, err := r.Figure8(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, fig, map[string]func(*Figure) float64{
			"useful/NL4":  func(f *Figure) float64 { return f.MeanUsefulFraction("O5+OM+NL_4") },
			"useful/CGP4": func(f *Figure) float64 { return f.MeanUsefulFraction("O5+OM+CGP_4") },
		})
	}
}

// BenchmarkFigure9 regenerates the CGP portion split.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		fig, err := r.Figure9(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, fig, map[string]func(*Figure) float64{
			"useful/NL-portion":   func(f *Figure) float64 { return f.MeanUsefulFraction("CGP_4/NL-portion") },
			"useful/CGHC-portion": func(f *Figure) float64 { return f.MeanUsefulFraction("CGP_4/CGHC-portion") },
		})
	}
}

// BenchmarkFigure10 regenerates the CPU2000 study.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		fig, err := r.Figure10(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, fig, map[string]func(*Figure) float64{
			"speedup/gcc+CGP4": func(f *Figure) float64 {
				for _, row := range f.RowsFor("gcc") {
					if row.Config == "O5+OM+CGP_4" {
						return row.Speedup
					}
				}
				return 0
			},
			"speedup/gzip+CGP4": func(f *Figure) float64 {
				for _, row := range f.RowsFor("gzip") {
					if row.Config == "O5+OM+CGP_4" {
						return row.Speedup
					}
				}
				return 0
			},
		})
	}
}

// BenchmarkRunAheadNL regenerates the §5.6 ablation.
func BenchmarkRunAheadNL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		fig, err := r.RunAheadAblation(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, fig, map[string]func(*Figure) float64{
			"speedup/RANL4-vs-NL4": func(f *Figure) float64 { return f.GeoSpeedup("O5+OM+RANL_4") },
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// instructions per wall-second for the full DB pipeline under CGP.
func BenchmarkSimulatorThroughput(b *testing.B) {
	opts := benchRunner().opts
	w := workload.WiscLarge2(opts.DB)
	reg := w.NewRegistry()
	img := program.LayoutO5(reg)
	b.ResetTimer()
	var instrs units.Instrs
	for i := 0; i < b.N; i++ {
		pf, _ := (Config{Layout: LayoutO5, Prefetcher: PrefCGP, Degree: 4}).buildPrefetcher()
		c := cpu.New(cpu.DefaultConfig(), pf)
		if err := w.Run(img, c); err != nil {
			b.Fatal(err)
		}
		instrs = c.Finish().Instructions
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// ---- microbenchmarks of the hot structures ----

func BenchmarkCacheAccess(b *testing.B) {
	c := cache.New[struct{}](cache.Config{Name: "b", SizeBytes: 32 * 1024, Assoc: 2, LineBytes: 32})
	for i := 0; i < 2048; i++ {
		c.Insert(cache.Line(i), struct{}{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(cache.Line(i & 4095))
	}
}

func BenchmarkCGHCAccess(b *testing.B) {
	p := core.New(core.Config{Lines: 4, L1Bytes: 2048, L2Bytes: 32 * 1024})
	sink := func(prefetch.Request) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		caller := isa.Addr(0x400000 + (i&127)*0x200)
		callee := isa.Addr(0x500000 + (i&63)*0x200)
		p.OnCall(callee, caller, sink)
		p.OnReturn(caller, callee, sink)
	}
}

func BenchmarkTracerSynthesis(b *testing.B) {
	reg := program.NewRegistry()
	main := reg.Register("main", 2000)
	leaf := reg.Register("leaf", 400)
	img := program.LayoutO5(reg)
	tr := trace.NewTracer(img, trace.Discard, 1)
	tr.Enter(main)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Enter(leaf)
		tr.Work(40)
		tr.Exit()
	}
}

func BenchmarkCPUConsume(b *testing.B) {
	c := cpu.New(cpu.DefaultConfig(), prefetch.NewNL(4))
	ev := trace.Event{Kind: trace.KindRun, Addr: 0x400000, N: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Addr = 0x400000 + isa.Addr((i&1023)*32)
		c.Event(ev)
	}
}

// ---- harness benchmarks: record/replay + parallel fan-out ----

// harnessBenchOpts is a small scale so a full AllFigures suite fits in
// one benchmark iteration.
func harnessBenchOpts(workers int, noRecord bool) RunnerOptions {
	return RunnerOptions{
		DB: DBOptions{
			WiscN: 800, Quantum: 7, Seed: 42, BufferFrames: 8192,
			TPCH: workload.TPCHScale{Suppliers: 12, Customers: 60, Parts: 90, Orders: 240, MaxLines: 4},
		},
		Seed:     42,
		Workers:  workers,
		NoRecord: noRecord,
	}
}

// harnessBench collects wall-clock and throughput per benchmark for
// BENCH_harness.json (written by TestMain after the run).
var harnessBench = struct {
	sync.Mutex
	entries map[string]*harnessBenchEntry
}{entries: map[string]*harnessBenchEntry{}}

type harnessBenchEntry struct {
	WallSeconds  float64 `json:"wall_seconds"`
	Events       int64   `json:"simulated_events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

func recordHarnessBench(name string, wall time.Duration, events int64) {
	harnessBench.Lock()
	defer harnessBench.Unlock()
	harnessBench.entries[name] = &harnessBenchEntry{
		WallSeconds:  wall.Seconds(),
		Events:       events,
		EventsPerSec: float64(events) / wall.Seconds(),
	}
}

// figureEvents counts simulated events across the distinct results of
// a figure set (rows share cached results; count each once).
func figureEvents(figs []*Figure) int64 {
	seen := map[*Result]bool{}
	var events int64
	for _, f := range figs {
		for _, row := range f.Rows {
			if row.Result != nil && !seen[row.Result] {
				seen[row.Result] = true
				events += row.Result.Trace.Events
			}
		}
	}
	return events
}

func benchAllFigures(b *testing.B, name string, workers int, noRecord bool) {
	var events int64
	for i := 0; i < b.N; i++ {
		r := NewRunner(harnessBenchOpts(workers, noRecord))
		figs, err := r.AllFigures(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		events = figureEvents(figs)
	}
	wall := b.Elapsed() / time.Duration(b.N)
	recordHarnessBench(name, wall, events)
	b.ReportMetric(float64(events)/wall.Seconds()/1e6, "Mevents/s")
}

// BenchmarkAllFiguresSequential is the harness as it existed before
// this rewrite: one simulation at a time, every cell re-executing the
// DB engine / CPU2000 generators.
func BenchmarkAllFiguresSequential(b *testing.B) {
	benchAllFigures(b, "allfigures_sequential_reexecute", 1, true)
}

// BenchmarkAllFiguresParallel is the full two-layer harness: traces
// recorded once per (workload, layout) and replayed into each config,
// with GOMAXPROCS simulations in flight.
func BenchmarkAllFiguresParallel(b *testing.B) {
	benchAllFigures(b, "allfigures_parallel_replay", 0, false)
}

// benchFig4Workload runs one workload through the six Figure-4 configs
// as a single RunAll batch — the harness's actual execution path — so
// the replay arm coalesces all configs into one decode pass.
func benchFig4Workload(b *testing.B, name string, noRecord bool) {
	var events int64
	for i := 0; i < b.N; i++ {
		r := NewRunner(harnessBenchOpts(1, noRecord))
		w := WiscLarge1(r.opts.DB)
		jobs := make([]Job, 0, len(fig4Configs()))
		for _, cfg := range fig4Configs() {
			jobs = append(jobs, Job{Workload: w, Config: cfg})
		}
		results, err := r.RunAll(context.Background(), jobs)
		if err != nil {
			b.Fatal(err)
		}
		events = 0
		for _, res := range results {
			events += res.Trace.Events
		}
	}
	wall := b.Elapsed() / time.Duration(b.N)
	recordHarnessBench(name, wall, events)
	b.ReportMetric(float64(events)/wall.Seconds()/1e6, "Mevents/s")
}

// BenchmarkFig4RowReexecute re-executes wisc-large-1 for each config.
func BenchmarkFig4RowReexecute(b *testing.B) {
	benchFig4Workload(b, "fig4row_reexecute", true)
}

// BenchmarkFig4RowReplay records wisc-large-1 once per layout and
// replays it into each config.
func BenchmarkFig4RowReplay(b *testing.B) {
	benchFig4Workload(b, "fig4row_replay", false)
}

// TestMain writes BENCH_harness.json after a harness benchmark run
// (see ISSUE 1) and BENCH_kernel.json after a kernel microbenchmark
// run (see ISSUE 3, bench_kernel_test.go).
func TestMain(m *testing.M) {
	code := m.Run()
	writeKernelBench()
	writeSamplingBench()
	harnessBench.Lock()
	defer harnessBench.Unlock()
	if len(harnessBench.entries) > 0 {
		out := map[string]any{
			"scale":      "WiscN=800 (harnessBenchOpts)",
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"bench":      harnessBench.entries,
		}
		if seq, ok := harnessBench.entries["allfigures_sequential_reexecute"]; ok {
			if par, ok := harnessBench.entries["allfigures_parallel_replay"]; ok {
				out["allfigures_speedup"] = seq.WallSeconds / par.WallSeconds
			}
		}
		if re, ok := harnessBench.entries["fig4row_reexecute"]; ok {
			if rp, ok := harnessBench.entries["fig4row_replay"]; ok {
				out["replay_speedup"] = re.WallSeconds / rp.WallSeconds
			}
		}
		if data, err := json.MarshalIndent(out, "", "  "); err == nil {
			_ = os.WriteFile("BENCH_harness.json", append(data, '\n'), 0o644)
		}
	}
	os.Exit(code)
}
