package cgp

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
)

// Checkpointing (DESIGN.md §11).
//
// When RunnerOptions.CheckpointDir is set, every completed Result is
// persisted as one JSON file keyed by the run cache key (workload name
// + full config fingerprint) and the campaign scope (workload sizing +
// seed), so a re-run of cmd/experiments after a crash, Ctrl-C or
// timeout skips the jobs that already finished. Files are written with
// the temp-file + rename idiom, so a checkpoint is either complete and
// valid or absent — a killed writer cannot leave a half checkpoint
// that a resume would trust.
//
// Checkpoints carry a CRC-32C over the result payload; a file that
// fails the version, key, scope or checksum test is ignored (and the
// cell recomputed), never an error — a bad checkpoint degrades to a
// cache miss. Simulations are deterministic, so a resumed campaign
// produces byte-identical figures whether each cell came from the
// checkpoint or from a fresh simulation.

// checkpointVersion is bumped when the file layout changes; files with
// another version are ignored.
const checkpointVersion = 1

// ckptTable is the CRC-32C polynomial used for payload checksums.
var ckptTable = crc32.MakeTable(crc32.Castagnoli)

// checkpointRecord is the on-disk layout of one completed job.
type checkpointRecord struct {
	Version int             `json:"version"`
	Key     string          `json:"key"`   // run cache key (workload + config fingerprint)
	Scope   string          `json:"scope"` // campaign scope (workload sizing + seed)
	Sum     uint32          `json:"sum"`   // CRC-32C of Result
	Result  json.RawMessage `json:"result"`
}

// scopeFingerprint pins checkpoints to this runner's campaign: a
// result recorded at one Wisconsin cardinality, TPC-H scale or seed
// must never satisfy a run at another. The run key alone cannot
// distinguish them — it fingerprints the config, not the data. The
// attribution flag is scope, not config: enabling it adds the
// Attribution rows to every Result, so plain and attributed campaigns
// must not serve each other's checkpoints.
func (r *Runner) scopeFingerprint() string {
	return fmt.Sprintf("db{%+v} seed%d attr%t", r.opts.DB, r.opts.Seed, r.opts.Attribution)
}

// checkpointPath maps a run key to its file. The name is a hash: run
// keys contain fingerprint text unfit for filenames, and the hash also
// covers the scope so differently-scaled campaigns can share one
// directory without colliding.
func (r *Runner) checkpointPath(key string) string {
	h := fnv.New64a()
	io.WriteString(h, key)
	io.WriteString(h, "\x00")
	io.WriteString(h, r.scopeFingerprint())
	return filepath.Join(r.opts.CheckpointDir, fmt.Sprintf("%016x.json", h.Sum64()))
}

// loadCheckpoint returns the persisted Result for (w, cfg) if a valid
// checkpoint exists. Any defect — missing file, truncation, version or
// scope mismatch, checksum failure — reads as a miss.
func (r *Runner) loadCheckpoint(w *Workload, cfg Config) (*Result, bool) {
	if r.opts.CheckpointDir == "" {
		return nil, false
	}
	key := runKey(w, cfg)
	data, err := os.ReadFile(r.checkpointPath(key))
	if err != nil {
		return nil, false
	}
	reject := func(why string) (*Result, bool) {
		r.opts.Log("checkpoint %s/%s: %s; recomputing", w.Name, cfg.Label(), why)
		return nil, false
	}
	var cr checkpointRecord
	if err := json.Unmarshal(data, &cr); err != nil {
		return reject("unreadable")
	}
	if cr.Version != checkpointVersion {
		return reject(fmt.Sprintf("version %d", cr.Version))
	}
	if cr.Key != key || cr.Scope != r.scopeFingerprint() {
		return reject("key/scope mismatch")
	}
	if crc32.Checksum(cr.Result, ckptTable) != cr.Sum {
		return reject("checksum mismatch")
	}
	var res Result
	if err := json.Unmarshal(cr.Result, &res); err != nil || res.CPU == nil {
		return reject("payload corrupt")
	}
	return &res, true
}

// storeCheckpoint persists a completed Result atomically. Failures are
// logged and swallowed: a campaign that cannot checkpoint still
// computes correct results, it just cannot resume.
func (r *Runner) storeCheckpoint(w *Workload, cfg Config, res *Result) {
	if r.opts.CheckpointDir == "" {
		return
	}
	sp := r.obsSpan("checkpoint", "checkpoint").
		Arg("workload", w.Name).Arg("config", cfg.Label())
	defer sp.End()
	key := runKey(w, cfg)
	body, err := json.Marshal(res)
	if err != nil {
		r.opts.Log("checkpoint %s/%s: encode: %v", w.Name, cfg.Label(), err)
		return
	}
	data, err := json.Marshal(checkpointRecord{
		Version: checkpointVersion,
		Key:     key,
		Scope:   r.scopeFingerprint(),
		Sum:     crc32.Checksum(body, ckptTable),
		Result:  body,
	})
	if err != nil {
		r.opts.Log("checkpoint %s/%s: encode: %v", w.Name, cfg.Label(), err)
		return
	}
	if err := writeFileAtomic(r.checkpointPath(key), data); err != nil {
		r.opts.Log("checkpoint %s/%s: %v", w.Name, cfg.Label(), err)
	}
}

// writeFileAtomic writes data to path via a temp file in the same
// directory plus rename, creating the directory on first use.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
