package cgp

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
)

// Checkpointing (DESIGN.md §11).
//
// When RunnerOptions.CheckpointDir is set, every completed Result is
// persisted as one JSON file keyed by the run cache key (workload name
// + full config fingerprint) and the campaign scope (workload sizing +
// seed), so a re-run of cmd/experiments after a crash, Ctrl-C or
// timeout skips the jobs that already finished. Files are written with
// the temp-file + rename idiom, so a checkpoint is either complete and
// valid or absent — a killed writer cannot leave a half checkpoint
// that a resume would trust.
//
// Checkpoints carry a CRC-32C over the result payload; a file that
// fails the version, key, scope or checksum test is ignored (and the
// cell recomputed), never an error — a bad checkpoint degrades to a
// cache miss. Simulations are deterministic, so a resumed campaign
// produces byte-identical figures whether each cell came from the
// checkpoint or from a fresh simulation.

// checkpointVersion is bumped when the file layout changes; files with
// another version are ignored.
const checkpointVersion = 1

// ckptTable is the CRC-32C polynomial used for payload checksums.
var ckptTable = crc32.MakeTable(crc32.Castagnoli)

// checkpointRecord is the on-disk layout of one completed job.
type checkpointRecord struct {
	Version int             `json:"version"`
	Key     string          `json:"key"`   // run cache key (workload + config fingerprint)
	Scope   string          `json:"scope"` // campaign scope (workload sizing + seed)
	Sum     uint32          `json:"sum"`   // CRC-32C of Result
	Result  json.RawMessage `json:"result"`
}

// scopeFingerprint pins checkpoints to this runner's campaign: a
// result recorded at one Wisconsin cardinality, TPC-H scale or seed
// must never satisfy a run at another. The run key alone cannot
// distinguish them — it fingerprints the config, not the data. The
// attribution flag is scope, not config: enabling it adds the
// Attribution rows to every Result, so plain and attributed campaigns
// must not serve each other's checkpoints.
func (r *Runner) scopeFingerprint() string {
	return fmt.Sprintf("db{%+v} seed%d attr%t", r.opts.DB, r.opts.Seed, r.opts.Attribution)
}

// recordPath maps a (key, scope) pair to its file under dir. The name
// is a hash: run keys contain fingerprint text unfit for filenames,
// and the hash also covers the scope so differently-scaled campaigns
// can share one directory without colliding. It is the single path
// rule shared by the writer (storeCheckpoint), the reader
// (loadCheckpoint) and the distributed importer (ImportRecord), so a
// record lands on the same file whichever process produced it.
func recordPath(dir, key, scope string) string {
	h := fnv.New64a()
	io.WriteString(h, key)
	io.WriteString(h, "\x00")
	io.WriteString(h, scope)
	return filepath.Join(dir, fmt.Sprintf("%016x.json", h.Sum64()))
}

// checkpointPath maps a run key to its file in this runner's scope.
func (r *Runner) checkpointPath(key string) string {
	return recordPath(r.opts.CheckpointDir, key, r.scopeFingerprint())
}

// loadCheckpoint returns the persisted Result for (w, cfg) if a valid
// checkpoint exists. Any defect — missing file, truncation, version or
// scope mismatch, checksum failure — reads as a miss.
func (r *Runner) loadCheckpoint(w *Workload, cfg Config) (*Result, bool) {
	if r.opts.CheckpointDir == "" {
		return nil, false
	}
	key := runKey(w, cfg)
	data, err := os.ReadFile(r.checkpointPath(key))
	if err != nil {
		return nil, false
	}
	reject := func(why string) (*Result, bool) {
		r.opts.Log("checkpoint %s/%s: %s; recomputing", w.Name, cfg.Label(), why)
		return nil, false
	}
	var cr checkpointRecord
	if err := json.Unmarshal(data, &cr); err != nil {
		return reject("unreadable")
	}
	if cr.Version != checkpointVersion {
		return reject(fmt.Sprintf("version %d", cr.Version))
	}
	if cr.Key != key || cr.Scope != r.scopeFingerprint() {
		return reject("key/scope mismatch")
	}
	if crc32.Checksum(cr.Result, ckptTable) != cr.Sum {
		return reject("checksum mismatch")
	}
	var res Result
	if err := json.Unmarshal(cr.Result, &res); err != nil || res.CPU == nil {
		return reject("payload corrupt")
	}
	return &res, true
}

// encodeRecord serializes one completed Result as the checkpoint
// record wire format: the same bytes storeCheckpoint writes to disk
// and ImportRecord accepts, so a record can travel between processes
// (a campaign worker streams it to its coordinator) and land in the
// destination directory bit-for-bit.
func (r *Runner) encodeRecord(key string, res *Result) ([]byte, error) {
	body, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	return json.Marshal(checkpointRecord{
		Version: checkpointVersion,
		Key:     key,
		Scope:   r.scopeFingerprint(),
		Sum:     crc32.Checksum(body, ckptTable),
		Result:  body,
	})
}

// emitRecord streams one settled cell's checkpoint record to the
// OnRecord hook. It fires for freshly simulated cells (with the bytes
// just written) and for checkpoint-hit cells (re-encoded — JSON
// marshaling is deterministic, so the bytes equal the stored ones), so
// a respawned worker re-announces the records its predecessor already
// computed and a coordinator's view converges on the full set.
func (r *Runner) emitRecord(w *Workload, cfg Config, res *Result, data []byte) {
	if r.opts.OnRecord == nil || r.opts.CheckpointDir == "" {
		return
	}
	key := runKey(w, cfg)
	if data == nil {
		var err error
		data, err = r.encodeRecord(key, res)
		if err != nil {
			r.opts.Log("checkpoint %s/%s: encode: %v", w.Name, cfg.Label(), err)
			return
		}
	}
	r.opts.OnRecord(key, data)
}

// storeCheckpoint persists a completed Result atomically. Failures are
// logged and swallowed: a campaign that cannot checkpoint still
// computes correct results, it just cannot resume.
func (r *Runner) storeCheckpoint(w *Workload, cfg Config, res *Result) {
	if r.opts.CheckpointDir == "" {
		return
	}
	sp := r.obsSpan("checkpoint", "checkpoint").
		Arg("workload", w.Name).Arg("config", cfg.Label())
	defer sp.End()
	key := runKey(w, cfg)
	data, err := r.encodeRecord(key, res)
	if err != nil {
		r.opts.Log("checkpoint %s/%s: encode: %v", w.Name, cfg.Label(), err)
		return
	}
	if err := writeFileAtomic(r.checkpointPath(key), data); err != nil {
		r.opts.Log("checkpoint %s/%s: %v", w.Name, cfg.Label(), err)
		return
	}
	r.emitRecord(w, cfg, res, data)
}

// ImportRecord validates one checkpoint record in wire format and
// installs it into dir under the path its embedded key and scope
// dictate. It is how a campaign coordinator merges records streamed
// from worker processes: the payload is checked (version, CRC-32C,
// decodable Result) before anything touches disk, the path derivation
// is scope-agnostic (a worker running a quantum-sweep sub-scope files
// its records where that scope's reader looks), and the write is
// first-writer-wins — if two workers race on the same cell, whichever
// record lands first stays, which is sound because records for a cell
// are byte-identical across workers (simulations are deterministic).
// It returns the record's run key and whether this call wrote the
// file (false: an identical record was already present).
func ImportRecord(dir string, data []byte) (key string, wrote bool, err error) {
	var cr checkpointRecord
	if err := json.Unmarshal(data, &cr); err != nil {
		return "", false, fmt.Errorf("cgp: import record: unreadable: %w", err)
	}
	if cr.Version != checkpointVersion {
		return cr.Key, false, fmt.Errorf("cgp: import record %q: version %d, want %d", cr.Key, cr.Version, checkpointVersion)
	}
	if cr.Key == "" || cr.Scope == "" {
		return cr.Key, false, fmt.Errorf("cgp: import record: empty key or scope")
	}
	if crc32.Checksum(cr.Result, ckptTable) != cr.Sum {
		return cr.Key, false, fmt.Errorf("cgp: import record %q: checksum mismatch", cr.Key)
	}
	var res Result
	if err := json.Unmarshal(cr.Result, &res); err != nil || res.CPU == nil {
		return cr.Key, false, fmt.Errorf("cgp: import record %q: payload corrupt", cr.Key)
	}
	wrote, err = writeFileNoClobber(recordPath(dir, cr.Key, cr.Scope), data)
	if err != nil {
		return cr.Key, false, fmt.Errorf("cgp: import record %q: %w", cr.Key, err)
	}
	return cr.Key, wrote, nil
}

// writeFileNoClobber writes data to path unless the path already
// exists, reporting whether this call created it. The existence check
// and the write are one atomic step — a hard link into place — so two
// concurrent importers of the same record cannot interleave: exactly
// one wins, the other sees the file already present.
func writeFileNoClobber(path string, data []byte) (bool, error) {
	if _, err := os.Stat(path); err == nil {
		return false, nil
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return false, err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return false, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return false, err
	}
	if err := tmp.Close(); err != nil {
		return false, err
	}
	if err := os.Link(tmp.Name(), path); err != nil {
		if errors.Is(err, os.ErrExist) {
			return false, nil // lost the race: an identical record won
		}
		return false, err
	}
	return true, nil
}

// writeFileAtomic writes data to path via a temp file in the same
// directory plus rename, creating the directory on first use.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
